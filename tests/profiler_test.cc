// The continuation-aware profiler, flight recorder, and stall watchdog.
//
// The properties under test are the ones the tools advertise:
//  * determinism — a fixed (config, seed, interval) reproduces the folded
//    profile and flight JSONL byte-identically;
//  * conservation — per-key folded cycle totals sum to total_cycles();
//  * attribution — blocked threads sample as their registered continuation
//    names, and the registry's counters reproduce the recognition rates;
//  * detection — an injected lost wakeup is flagged by the watchdog.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "src/ipc/ipc_space.h"
#include "src/ipc/mach_msg.h"
#include "src/kern/kernel.h"
#include "src/obs/introspect.h"
#include "src/obs/profiler.h"
#include "src/obs/watchdog.h"
#include "src/task/task.h"
#include "src/task/usermode.h"
#include "src/workload/workload.h"

namespace mkc {
namespace {

// --- Registry unit tests -----------------------------------------------------

void ContA() {}
void ContB() {}

TEST(ContinuationRegistryTest, RegisterIsIdempotentFirstNameWins) {
  ContinuationRegistry reg;
  reg.Register(&ContA, "first");
  reg.Register(&ContA, "second");
  EXPECT_STREQ(reg.Name(&ContA), "first");
  ASSERT_EQ(reg.entries().size(), 1u);
}

TEST(ContinuationRegistryTest, NameFallbacks) {
  ContinuationRegistry reg;
  reg.Register(&ContA, "a");
  EXPECT_STREQ(reg.Name(nullptr), "<none>");
  EXPECT_STREQ(reg.Name(&ContB), "<unregistered>");
  EXPECT_STREQ(reg.Name(&ContA), "a");
}

TEST(ContinuationRegistryTest, AccountingAndRecognitionRate) {
  ContinuationRegistry reg;
  reg.Register(&ContA, "a");
  reg.NoteBlock(&ContA);
  reg.NoteBlock(&ContA);
  reg.NoteResume(&ContA);
  reg.NoteRecognition(&ContA);
  const ContinuationInfo* info = reg.Find(&ContA);
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->blocks, 2u);
  EXPECT_EQ(info->resumes, 1u);
  EXPECT_EQ(info->recognitions, 1u);
  EXPECT_DOUBLE_EQ(info->RecognitionRate(), 0.5);
  // Unregistered pointers land in the catch-all, not nowhere.
  reg.NoteBlock(&ContB);
  EXPECT_EQ(reg.unregistered_blocks(), 1u);
  reg.ResetCounts();
  EXPECT_EQ(reg.Find(&ContA)->blocks, 0u);
  EXPECT_EQ(reg.unregistered_blocks(), 0u);
}

// --- Profiler over a real workload -------------------------------------------

struct ProfileCapture {
  std::string folded;
  std::string flight;
  std::uint64_t total_cycles = 0;
  std::uint64_t samples = 0;
  std::uint64_t folded_sum = 0;
  std::uint64_t msg_blocks = 0;
  std::uint64_t msg_recognitions = 0;
  double msg_rate = 0.0;
  std::uint64_t unregistered_blocks = 0;
};

void CaptureProfile(Kernel& kernel, void* arg) {
  auto* cap = static_cast<ProfileCapture*>(arg);
  ASSERT_NE(kernel.profiler(), nullptr);
  cap->folded = kernel.profiler()->FoldedString();
  cap->flight = kernel.profiler()->FlightJsonl();
  cap->total_cycles = kernel.profiler()->total_cycles();
  cap->samples = kernel.profiler()->samples();
  for (const auto& [key, cycles] : kernel.profiler()->folded()) {
    cap->folded_sum += cycles;
  }
  for (const ContinuationInfo& info : kernel.continuations().entries()) {
    if (info.name == "mach_msg_continue") {
      cap->msg_blocks = info.blocks;
      cap->msg_recognitions = info.recognitions;
      cap->msg_rate = info.RecognitionRate();
    }
  }
  cap->unregistered_blocks = kernel.continuations().unregistered_blocks();
}

ProfileCapture RunProfiledCompile(std::uint64_t seed, int scale = 2) {
  KernelConfig config;
  config.profile_interval = 5000;
  config.flight_interval = 50000;
  WorkloadParams params;
  params.scale = scale;
  params.seed = seed;
  ProfileCapture cap;
  params.post_run = &CaptureProfile;
  params.post_run_arg = &cap;
  RunCompileWorkload(config, params);
  return cap;
}

TEST(ProfilerTest, FoldedCyclesSumToTotalSampledCycles) {
  ProfileCapture cap = RunProfiledCompile(42);
  EXPECT_GT(cap.samples, 0u);
  EXPECT_GT(cap.total_cycles, 0u);
  EXPECT_EQ(cap.folded_sum, cap.total_cycles);
  // Every sample attributed one interval per sample to at least one thread.
  EXPECT_GE(cap.total_cycles, cap.samples * 5000);
}

TEST(ProfilerTest, ProfileIsDeterministicForFixedConfigSeedInterval) {
  ProfileCapture a = RunProfiledCompile(42);
  ProfileCapture b = RunProfiledCompile(42);
  EXPECT_FALSE(a.folded.empty());
  EXPECT_EQ(a.folded, b.folded);
  EXPECT_EQ(a.flight, b.flight);
  EXPECT_EQ(a.total_cycles, b.total_cycles);
  // A different run length is a different schedule; the profile must move
  // too (guards against the profiler accidentally sampling nothing real).
  ProfileCapture c = RunProfiledCompile(42, /*scale=*/3);
  EXPECT_NE(a.folded, c.folded);
}

TEST(ProfilerTest, BlockedThreadsSampleAsRegisteredContinuations) {
  ProfileCapture cap = RunProfiledCompile(42);
  // The compile workload's servers spend the run blocked in mach_msg; the
  // folded profile must say so by name, with the wait port as a leaf frame.
  EXPECT_NE(cap.folded.find("blocked:message-receive;mach_msg_continue;port"),
            std::string::npos);
  // No raw pointers, no anonymous frames: everything the kernel blocks with
  // is registered.
  EXPECT_EQ(cap.folded.find("<unregistered>"), std::string::npos);
  EXPECT_EQ(cap.unregistered_blocks, 0u);
}

TEST(ProfilerTest, RegistryReproducesReceiveRecognitionRate) {
  ProfileCapture cap = RunProfiledCompile(42);
  // MK40 with recognition on: nearly every receive resumption on the RPC
  // path is recognized (the paper's Table 2 shows 99%+ for mach_msg).
  EXPECT_GT(cap.msg_blocks, 0u);
  EXPECT_GT(cap.msg_recognitions, 0u);
  EXPECT_GT(cap.msg_rate, 0.9);
}

TEST(ProfilerTest, FlightRecorderEmitsJsonlSnapshots) {
  ProfileCapture cap = RunProfiledCompile(42);
  ASSERT_FALSE(cap.flight.empty());
  // Every line is one JSON object with the fixed envelope.
  std::size_t lines = 0;
  std::size_t start = 0;
  while (start < cap.flight.size()) {
    std::size_t end = cap.flight.find('\n', start);
    ASSERT_NE(end, std::string::npos);
    std::string line = cap.flight.substr(start, end - start);
    EXPECT_EQ(line.rfind("{\"t\":", 0), 0u) << line;
    EXPECT_NE(line.find("\"counters\":{"), std::string::npos);
    EXPECT_NE(line.find("\"hist\":{"), std::string::npos);
    EXPECT_EQ(line.back(), '}');
    ++lines;
    start = end + 1;
  }
  EXPECT_GT(lines, 1u);
}

TEST(ProfilerTest, ZeroConfigMeansNoObservers) {
  KernelConfig config;
  Kernel kernel(config);
  EXPECT_EQ(kernel.profiler(), nullptr);
  EXPECT_EQ(kernel.watchdog(), nullptr);
}

// --- Stall watchdog ----------------------------------------------------------

struct StallState {
  PortId dead_port = kInvalidPort;
  Ticks spin = 0;
};

// The injected lost wakeup: a receive on a port no one will ever send to.
void ForgottenWaiter(void* arg) {
  auto* st = static_cast<StallState*>(arg);
  UserMessage msg;
  UserMachMsg(&msg, kMsgRcvOpt, 0, kMaxInlineBytes, st->dead_port);
  FAIL() << "the forgotten waiter was woken";
}

void BusyMain(void* arg) {
  auto* st = static_cast<StallState*>(arg);
  // Advance virtual time well past the watchdog threshold in safe-point
  // sized steps, so ObsTick gets a chance to run the checks.
  for (int i = 0; i < 16; ++i) {
    UserWork(st->spin);
  }
}

TEST(WatchdogTest, FlagsInjectedLostWakeup) {
  KernelConfig config;
  config.watchdog_threshold = 100000;
  config.trace_capacity = 4096;
  Kernel kernel(config);
  Task* task = kernel.CreateTask("stall");
  StallState st;
  st.dead_port = kernel.ipc().AllocatePort(task);
  st.spin = 50000;
  ThreadOptions daemon;
  daemon.daemon = true;
  Thread* waiter = kernel.CreateUserThread(task, &ForgottenWaiter, &st, daemon);
  kernel.CreateUserThread(task, &BusyMain, &st);
  kernel.Run();

  ASSERT_NE(kernel.watchdog(), nullptr);
  bool flagged = false;
  for (const StallRecord& s : kernel.watchdog()->stalls()) {
    if (s.kind == StallKind::kLostWakeup && s.thread == waiter->id) {
      flagged = true;
      EXPECT_GE(s.age, kernel.config().watchdog_threshold);
      // The description names the continuation the waiter is parked on.
      EXPECT_NE(s.description.find("mach_msg_continue"), std::string::npos)
          << s.description;
    }
  }
  EXPECT_TRUE(flagged);
  // The suspect also went into the trace ring as a kStallWarn record.
  bool traced = false;
  kernel.trace().ForEach([&](const TraceRecord& r) {
    if (r.event == TraceEvent::kStallWarn && r.thread == waiter->id &&
        r.aux == static_cast<std::uint32_t>(StallKind::kLostWakeup)) {
      traced = true;
    }
  });
  EXPECT_TRUE(traced);
  // Dedup: one suspect, flagged once, no matter how many checks ran.
  int lost_wakeups = 0;
  for (const StallRecord& s : kernel.watchdog()->stalls()) {
    lost_wakeups += s.kind == StallKind::kLostWakeup ? 1 : 0;
  }
  EXPECT_EQ(lost_wakeups, 1);
  EXPECT_FALSE(kernel.watchdog()->Report().empty());
}

TEST(WatchdogTest, QuietOnHealthyRun) {
  KernelConfig config;
  config.watchdog_threshold = 10000000;  // Far beyond the run's vtime.
  Kernel kernel(config);
  Task* task = kernel.CreateTask("healthy");
  StallState st;
  st.spin = 20000;
  kernel.CreateUserThread(task, &BusyMain, &st);
  kernel.Run();
  ASSERT_NE(kernel.watchdog(), nullptr);
  EXPECT_TRUE(kernel.watchdog()->stalls().empty());
  EXPECT_TRUE(kernel.watchdog()->Report().empty());
}

// Internal protocol threads (pager, reaper, device service) block forever by
// design; the watchdog must not cry wolf about them.
TEST(WatchdogTest, InternalThreadsAreExemptFromLostWakeup) {
  KernelConfig config;
  config.watchdog_threshold = 1000;  // Aggressive: everything looks stalled.
  Kernel kernel(config);
  Task* task = kernel.CreateTask("exempt");
  StallState st;
  st.spin = 5000;
  kernel.CreateUserThread(task, &BusyMain, &st);
  kernel.Run();
  ASSERT_NE(kernel.watchdog(), nullptr);
  for (const StallRecord& s : kernel.watchdog()->stalls()) {
    if (s.kind != StallKind::kLostWakeup) {
      continue;
    }
    // Any flagged waiter must be a user thread, never pager/reaper/devices.
    EXPECT_EQ(s.description.find("pager"), std::string::npos) << s.description;
    EXPECT_EQ(s.description.find("reaper"), std::string::npos) << s.description;
    EXPECT_EQ(s.description.find("-intr"), std::string::npos) << s.description;
  }
}

}  // namespace
}  // namespace mkc
