// Configuration-matrix sweep: the same mixed scenario driven across every
// combination of kernel model, ablation switches and stack-cache size, with
// live invariant checking — plus targeted error injection (port death under
// blocked waiters on the continuation paths).
#include <gtest/gtest.h>

#include <cstring>
#include <tuple>

#include "src/exc/exception.h"
#include "src/ipc/ipc_space.h"
#include "src/ipc/mach_msg.h"
#include "src/kern/kernel.h"
#include "src/obs/trace_export.h"
#include "src/task/task.h"
#include "src/task/usermode.h"
#include "src/vm/vm_system.h"
#include "src/workload/workload.h"

namespace mkc {
namespace {

struct MatrixEnv {
  PortId service_port = kInvalidPort;
  PortId exc_port = kInvalidPort;
  VmAddress region = 0;
  int iterations = 0;
  int completed = 0;
  std::uint64_t violations = 0;
};

MatrixEnv* g_matrix = nullptr;

void CheckInvariants(Kernel& k, std::uint64_t* violations) {
  for (const auto& t : k.threads()) {
    if (t->state == ThreadState::kWaiting && t->continuation != nullptr &&
        t->kernel_stack != nullptr) {
      ++*violations;
    }
  }
}

void MatrixServer(void* /*arg*/) {
  UserMessage msg;
  if (UserServeOnce(&msg, 0, g_matrix->service_port) != KernReturn::kSuccess) {
    return;
  }
  for (;;) {
    msg.header.dest = msg.header.reply;
    if (UserServeOnce(&msg, 16, g_matrix->service_port) != KernReturn::kSuccess) {
      return;
    }
  }
}

void MatrixExcServer(void* /*arg*/) {
  UserMessage msg;
  if (UserServeOnce(&msg, 0, g_matrix->exc_port) != KernReturn::kSuccess) {
    return;
  }
  for (;;) {
    ExcRequestBody req;
    std::memcpy(&req, msg.body, sizeof(req));
    ExcReplyBody reply;
    reply.handled = 1;
    msg.header.dest = req.reply_port;
    std::memcpy(msg.body, &reply, sizeof(reply));
    if (UserServeOnce(&msg, sizeof(reply), g_matrix->exc_port) != KernReturn::kSuccess) {
      return;
    }
  }
}

void MatrixClient(void* arg) {
  auto idx = reinterpret_cast<std::uintptr_t>(arg);
  MatrixEnv* env = g_matrix;
  PortId reply = UserPortAllocate();
  UserMessage msg;
  for (int i = 0; i < env->iterations; ++i) {
    msg.header.dest = env->service_port;
    UserRpc(&msg, 16, reply);
    UserRaiseException(kExcSoftware);
    UserTouch(env->region + ((idx * 13 + static_cast<std::uintptr_t>(i)) % 24) * kPageSize,
              i % 2 == 0);
    UserWork(3000);
    CheckInvariants(ActiveKernel(), &env->violations);
  }
  ++env->completed;
}

using MatrixParam = std::tuple<ControlTransferModel, bool, bool, std::size_t>;

class ConfigMatrixTest : public testing::TestWithParam<MatrixParam> {};

TEST_P(ConfigMatrixTest, MixedScenarioIsCorrectEverywhere) {
  auto [model, handoff, recognition, cache] = GetParam();
  KernelConfig config;
  config.model = model;
  config.enable_handoff = handoff;
  config.enable_recognition = recognition;
  config.stack_cache_limit = cache;
  config.physical_pages = 96;
  Kernel kernel(config);
  Task* task = kernel.CreateTask("matrix");
  Task* server_task = kernel.CreateTask("server");

  static MatrixEnv env;
  env = MatrixEnv{};
  g_matrix = &env;
  env.service_port = kernel.ipc().AllocatePort(server_task);
  env.exc_port = kernel.ipc().AllocatePort(task);
  task->exception_port = env.exc_port;
  env.region = task->map.Allocate(24 * kPageSize, VmBacking::kPaged);
  env.iterations = 40;

  ThreadOptions daemon;
  daemon.daemon = true;
  kernel.CreateUserThread(server_task, &MatrixServer, nullptr, daemon);
  kernel.CreateUserThread(task, &MatrixExcServer, nullptr, daemon);
  for (std::uintptr_t i = 0; i < 3; ++i) {
    kernel.CreateUserThread(task, &MatrixClient, reinterpret_cast<void*>(i));
  }
  kernel.Run();

  EXPECT_EQ(env.completed, 3);
  EXPECT_EQ(env.violations, 0u);
  const auto& ts = kernel.transfer_stats();
  EXPECT_EQ(ts.total_blocks, ts.TotalDiscards() + ts.TotalNoDiscards());
  if (!handoff || model != ControlTransferModel::kMK40) {
    EXPECT_EQ(ts.stack_handoffs, 0u);
  }
  if (!recognition || model != ControlTransferModel::kMK40) {
    EXPECT_EQ(ts.recognitions, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ConfigMatrixTest,
    testing::Combine(testing::Values(ControlTransferModel::kMach25,
                                     ControlTransferModel::kMK32,
                                     ControlTransferModel::kMK40),
                     testing::Bool(), testing::Bool(),
                     testing::Values(std::size_t{0}, std::size_t{4})),
    [](const testing::TestParamInfo<MatrixParam>& info) {
      const char* model = "";
      switch (std::get<0>(info.param)) {
        case ControlTransferModel::kMach25:
          model = "Mach25";
          break;
        case ControlTransferModel::kMK32:
          model = "MK32";
          break;
        case ControlTransferModel::kMK40:
          model = "MK40";
          break;
      }
      return std::string(model) + (std::get<1>(info.param) ? "_ho" : "_noho") +
             (std::get<2>(info.param) ? "_rec" : "_norec") + "_c" +
             std::to_string(std::get<3>(info.param));
    });

// --- Error injection: port death under blocked continuation waiters -----------

class PortDeathModelTest : public testing::TestWithParam<ControlTransferModel> {};

TEST_P(PortDeathModelTest, ReplyPortDeathFailsClientMidRpc) {
  KernelConfig config;
  config.model = GetParam();
  Kernel kernel(config);
  Task* task = kernel.CreateTask("t");
  static PortId service;
  static PortId reply;
  static KernReturn client_kr;
  service = kernel.ipc().AllocatePort(task);
  reply = kernel.ipc().AllocatePort(task);
  client_kr = KernReturn::kSuccess;

  // The "server" receives the request but never replies; instead it kills
  // the client's reply port. The client, parked on the reply port with
  // mach_msg_continue, must complete with kRcvPortDied.
  ThreadOptions daemon;
  daemon.daemon = true;
  kernel.CreateUserThread(
      task,
      [](void*) {
        UserMessage msg;
        if (UserMachMsg(&msg, kMsgRcvOpt, 0, kMaxInlineBytes, service) !=
            KernReturn::kSuccess) {
          return;
        }
        UserPortDestroy(reply);
      },
      nullptr, daemon);
  kernel.CreateUserThread(
      task,
      [](void*) {
        UserMessage msg;
        msg.header.dest = service;
        client_kr = UserRpc(&msg, 8, reply);
      },
      nullptr);
  kernel.Run();
  EXPECT_EQ(client_kr, KernReturn::kRcvPortDied);
}

TEST_P(PortDeathModelTest, ServicePortDeathFailsParkedServer) {
  KernelConfig config;
  config.model = GetParam();
  Kernel kernel(config);
  Task* task = kernel.CreateTask("t");
  static PortId service;
  static KernReturn server_kr;
  service = kernel.ipc().AllocatePort(task);
  server_kr = KernReturn::kSuccess;
  ThreadOptions daemon;
  daemon.daemon = true;
  kernel.CreateUserThread(
      task,
      [](void*) {
        UserMessage msg;
        server_kr = UserMachMsg(&msg, kMsgRcvOpt, 0, kMaxInlineBytes, service);
      },
      nullptr, daemon);
  kernel.CreateUserThread(
      task,
      [](void*) {
        UserYield();  // Let the server park with its continuation.
        UserPortDestroy(service);
      },
      nullptr);
  kernel.Run();
  EXPECT_EQ(server_kr, KernReturn::kRcvPortDied);
}

TEST_P(PortDeathModelTest, SendToSetMemberAfterSetDestroyStillWorks) {
  KernelConfig config;
  config.model = GetParam();
  Kernel kernel(config);
  Task* task = kernel.CreateTask("t");
  static PortId set;
  static PortId member;
  static KernReturn send_kr, rcv_kr;
  set = kernel.ipc().AllocatePortSet(task);
  member = kernel.ipc().AllocatePort(task);
  ASSERT_EQ(kernel.ipc().AddToSet(member, set), KernReturn::kSuccess);
  kernel.ipc().DestroyPort(set);  // The set dies; the member survives.
  kernel.CreateUserThread(
      task,
      [](void*) {
        UserMessage msg;
        msg.header.dest = member;
        send_kr = UserMachMsg(&msg, kMsgSendOpt, 8, 0, kInvalidPort);
        rcv_kr = UserMachMsg(&msg, kMsgRcvOpt, 0, kMaxInlineBytes, member);
      },
      nullptr);
  kernel.Run();
  EXPECT_EQ(send_kr, KernReturn::kSuccess);
  EXPECT_EQ(rcv_kr, KernReturn::kSuccess);
}

// --- Determinism: metrics are a pure function of (config, seed) ---------------

void CaptureMetricsJson(Kernel& kernel, void* arg) {
  *static_cast<std::string*>(arg) = kernel.metrics().DumpJsonString();
}

TEST(MetricsDeterminismTest, SameSeedSameConfigYieldsByteIdenticalMetricsJson) {
  KernelConfig config;
  config.trace_capacity = 1024;  // Tracing on must not perturb the metrics.
  WorkloadParams params;
  params.scale = 1;
  params.seed = 1234;
  params.post_run = &CaptureMetricsJson;

  std::string first;
  std::string second;
  params.post_run_arg = &first;
  RunCompileWorkload(config, params);
  params.post_run_arg = &second;
  RunCompileWorkload(config, params);

  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);

  // A different seed must actually change the distributions (guards against
  // the dump ignoring the run).
  std::string other_seed;
  params.seed = 99;
  params.post_run_arg = &other_seed;
  RunCompileWorkload(config, params);
  EXPECT_NE(first, other_seed);
}

void CaptureTraceJson(Kernel& kernel, void* arg) {
  *static_cast<std::string*>(arg) = ChromeTraceString(kernel.trace());
}

TEST(MetricsDeterminismTest, SameSeedFourCpusYieldsByteIdenticalTraceJson) {
  // The full exported trace — span ids, CPU stamps, steal events and all —
  // must be a pure function of (config, seed), even with four CPUs
  // interleaving and stealing work.
  KernelConfig config;
  config.ncpu = 4;
  config.trace_capacity = 1 << 14;
  WorkloadParams params;
  params.scale = 1;
  params.seed = 77;
  params.post_run = &CaptureTraceJson;

  std::string first;
  std::string second;
  params.post_run_arg = &first;
  RunServerFarmWorkload(config, params);
  params.post_run_arg = &second;
  RunServerFarmWorkload(config, params);

  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);

  // Sanity: the trace actually contains span and per-CPU content.
  EXPECT_NE(first.find("\"span-begin\""), std::string::npos);
  EXPECT_NE(first.find("\"cpu\":3"), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(AllModels, PortDeathModelTest,
                         testing::Values(ControlTransferModel::kMach25,
                                         ControlTransferModel::kMK32,
                                         ControlTransferModel::kMK40),
                         [](const testing::TestParamInfo<ControlTransferModel>& info) {
                           switch (info.param) {
                             case ControlTransferModel::kMach25:
                               return "Mach25";
                             case ControlTransferModel::kMK32:
                               return "MK32";
                             case ControlTransferModel::kMK40:
                               return "MK40";
                           }
                           return "unknown";
                         });

}  // namespace
}  // namespace mkc
