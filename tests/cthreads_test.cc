// Tests for the C-Threads-with-continuations package (the paper's §6 future
// work). These run on the bare host: the runtime only needs the Context
// primitives.
#include "src/ext/cthreads.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

namespace mkc {
namespace {

struct Counter {
  CthreadRuntime* rt = nullptr;
  int value = 0;
};

void Increment(void* arg) { ++static_cast<Counter*>(arg)->value; }

TEST(CthreadsTest, SpawnAndRunToCompletion) {
  CthreadRuntime rt;
  Counter c;
  for (int i = 0; i < 10; ++i) {
    rt.Spawn(&Increment, &c);
  }
  rt.Run();
  EXPECT_EQ(c.value, 10);
  EXPECT_FALSE(rt.HasLiveThreads());
  EXPECT_EQ(rt.stats().spawns, 10u);
}

struct YieldState {
  CthreadRuntime* rt = nullptr;
  std::vector<int> order;
  int rounds = 0;
};

void YieldingWorker(void* arg) {
  auto* st = static_cast<YieldState*>(arg);
  int id = static_cast<int>(st->rt->Current()->id);
  for (int i = 0; i < st->rounds; ++i) {
    st->order.push_back(id);
    st->rt->Yield();
  }
}

TEST(CthreadsTest, YieldInterleavesRoundRobin) {
  CthreadRuntime rt;
  YieldState st;
  st.rt = &rt;
  st.rounds = 3;
  rt.Spawn(&YieldingWorker, &st);
  rt.Spawn(&YieldingWorker, &st);
  rt.Run();
  EXPECT_EQ(st.order, (std::vector<int>{1, 2, 1, 2, 1, 2}));
}

struct PingPong {
  CthreadRuntime* rt = nullptr;
  char ping_event = 0;
  char pong_event = 0;
  int exchanges = 0;
  int done = 0;
};

void Pinger(void* arg) {
  auto* pp = static_cast<PingPong*>(arg);
  for (int i = 0; i < pp->exchanges; ++i) {
    pp->rt->Notify(&pp->pong_event);
    pp->rt->Wait(&pp->ping_event);
  }
  pp->rt->Notify(&pp->pong_event);
  ++pp->done;
}

void Ponger(void* arg) {
  auto* pp = static_cast<PingPong*>(arg);
  for (int i = 0; i < pp->exchanges; ++i) {
    pp->rt->Wait(&pp->pong_event);
    pp->rt->Notify(&pp->ping_event);
  }
  pp->rt->Wait(&pp->pong_event);
  ++pp->done;
}

TEST(CthreadsTest, WaitNotifyPingPong) {
  CthreadRuntime rt;
  PingPong pp;
  pp.rt = &rt;
  pp.exchanges = 100;
  rt.Spawn(&Ponger, &pp);
  rt.Spawn(&Pinger, &pp);
  rt.Run();
  EXPECT_EQ(pp.done, 2);
}

// --- Continuation-model blocking: the §6 experiment -----------------------

struct ContState {
  CthreadRuntime* rt = nullptr;
  char event = 0;
  int rounds_left = 0;
  int resumed = 0;
};

ContState* g_cont_state = nullptr;

// Scratch contents while blocked (fits the 28-byte budget).
struct __attribute__((packed)) ContScratch {
  int remaining;
};

void ServerContinuation() {
  ContState* st = g_cont_state;
  Cthread* self = st->rt->Current();
  auto& sc = self->Scratch<ContScratch>();
  ++st->resumed;
  if (sc.remaining > 0) {
    sc.remaining -= 1;
    st->rt->WaitWithContinuation(&st->event, &ServerContinuation);
  }
  st->rt->Exit();
}

void ContinuationServer(void* arg) {
  auto* st = static_cast<ContState*>(arg);
  Cthread* self = st->rt->Current();
  self->Scratch<ContScratch>().remaining = st->rounds_left;
  st->rt->WaitWithContinuation(&st->event, &ServerContinuation);
}

void ContinuationDriver(void* arg) {
  auto* st = static_cast<ContState*>(arg);
  for (int i = 0; i <= st->rounds_left; ++i) {
    st->rt->Notify(&st->event);
    st->rt->Yield();
  }
}

TEST(CthreadsTest, ContinuationBlockingDiscardsStacks) {
  CthreadRuntime::Config config;
  config.stack_cache_limit = 4;
  CthreadRuntime rt(config);
  ContState st;
  st.rt = &rt;
  st.rounds_left = 50;
  g_cont_state = &st;
  rt.Spawn(&ContinuationServer, &st);
  rt.Spawn(&ContinuationDriver, &st);
  rt.Run();
  EXPECT_EQ(st.resumed, 51);
  EXPECT_EQ(rt.stats().discards, 51u);
  // While the server was parked with a continuation, only the driver's
  // stack existed: the package never needed more than 2 stacks at once.
  EXPECT_LE(rt.stats().max_stacks_in_use, 2u);
  // And the cache meant almost no fresh allocations despite 50+ discards.
  EXPECT_LE(rt.stats().stacks_created, 3u);
}

TEST(CthreadsTest, ManyBlockedContinuationThreadsUseNoStacks) {
  CthreadRuntime rt;
  static CthreadRuntime* s_rt;
  static char s_event;
  s_rt = &rt;
  for (int i = 0; i < 200; ++i) {
    rt.Spawn(
        [](void*) {
          s_rt->WaitWithContinuation(&s_event, []() { s_rt->Exit(); });
        },
        nullptr);
  }
  rt.Run();  // Everyone parks.
  EXPECT_EQ(rt.stats().stacks_in_use, 0u);  // 200 blocked threads, zero stacks.
  EXPECT_TRUE(rt.HasLiveThreads());
  rt.Notify(&s_event);
  rt.Run();
  EXPECT_FALSE(rt.HasLiveThreads());
}

// --- Mutex / condition variables ---------------------------------------------

struct BankState {
  CthreadRuntime* rt = nullptr;
  CthreadMutex* mutex = nullptr;
  long balance = 0;
  int per_thread = 0;
  long max_seen_inside = 0;
};

void BankWorker(void* arg) {
  auto* st = static_cast<BankState*>(arg);
  for (int i = 0; i < st->per_thread; ++i) {
    st->mutex->Lock();
    long before = st->balance;
    st->rt->Yield();  // Try to break atomicity: the lock must protect us.
    st->balance = before + 1;
    st->mutex->Unlock();
  }
}

TEST(CthreadSyncTest, MutexProtectsCriticalSection) {
  CthreadRuntime rt;
  CthreadMutex mutex(rt);
  BankState st;
  st.rt = &rt;
  st.mutex = &mutex;
  st.per_thread = 100;
  for (int i = 0; i < 4; ++i) {
    rt.Spawn(&BankWorker, &st);
  }
  rt.Run();
  EXPECT_EQ(st.balance, 400);
  EXPECT_FALSE(mutex.held());
}

struct QueueState {
  CthreadRuntime* rt = nullptr;
  CthreadMutex* mutex = nullptr;
  CthreadCondition* not_empty = nullptr;
  int queued = 0;
  int produced = 0;
  int consumed = 0;
  int target = 0;
  bool done = false;
};

void CondProducer(void* arg) {
  auto* st = static_cast<QueueState*>(arg);
  for (int i = 0; i < st->target; ++i) {
    st->mutex->Lock();
    ++st->queued;
    ++st->produced;
    st->not_empty->Signal();
    st->mutex->Unlock();
    st->rt->Yield();
  }
  st->mutex->Lock();
  st->done = true;
  st->not_empty->Broadcast();
  st->mutex->Unlock();
}

void CondConsumer(void* arg) {
  auto* st = static_cast<QueueState*>(arg);
  for (;;) {
    st->mutex->Lock();
    while (st->queued == 0 && !st->done) {
      st->not_empty->Wait(*st->mutex);
    }
    if (st->queued == 0 && st->done) {
      st->mutex->Unlock();
      return;
    }
    --st->queued;
    ++st->consumed;
    st->mutex->Unlock();
  }
}

TEST(CthreadSyncTest, ConditionVariableProducerConsumer) {
  CthreadRuntime rt;
  CthreadMutex mutex(rt);
  CthreadCondition not_empty(rt);
  QueueState st;
  st.rt = &rt;
  st.mutex = &mutex;
  st.not_empty = &not_empty;
  st.target = 150;
  rt.Spawn(&CondConsumer, &st);
  rt.Spawn(&CondConsumer, &st);
  rt.Spawn(&CondProducer, &st);
  rt.Run();
  EXPECT_EQ(st.produced, 150);
  EXPECT_EQ(st.consumed, 150);
  EXPECT_EQ(st.queued, 0);
}

}  // namespace
}  // namespace mkc
