// Tests for port sets and receive timeouts.
#include <gtest/gtest.h>

#include <cstring>
#include <set>

#include "src/ipc/ipc_space.h"
#include "src/ipc/mach_msg.h"
#include "src/kern/kernel.h"
#include "src/task/task.h"
#include "src/task/usermode.h"

namespace mkc {
namespace {

class PortSetModelTest : public testing::TestWithParam<ControlTransferModel> {
 protected:
  KernelConfig Config() {
    KernelConfig config;
    config.model = GetParam();
    return config;
  }
};

struct SetServerState {
  PortId set = kInvalidPort;
  PortId members[3] = {};
  int expected = 0;
  int received = 0;
  std::set<PortId> seen_dests;
};

void SetServer(void* arg) {
  auto* st = static_cast<SetServerState*>(arg);
  UserMessage msg;
  for (int i = 0; i < st->expected; ++i) {
    ASSERT_EQ(UserMachMsg(&msg, kMsgRcvOpt, 0, kMaxInlineBytes, st->set),
              KernReturn::kSuccess);
    st->seen_dests.insert(msg.header.dest);
    ++st->received;
  }
}

void SetClient(void* arg) {
  auto* st = static_cast<SetServerState*>(arg);
  UserMessage msg;
  for (int round = 0; round < st->expected / 3; ++round) {
    for (PortId member : st->members) {
      msg.header.dest = member;
      ASSERT_EQ(UserMachMsg(&msg, kMsgSendOpt, 16, 0, kInvalidPort), KernReturn::kSuccess);
    }
  }
}

TEST_P(PortSetModelTest, ReceiverOnSetGetsMessagesFromAllMembers) {
  Kernel kernel(Config());
  Task* task = kernel.CreateTask("t");
  SetServerState st;
  st.set = kernel.ipc().AllocatePortSet(task);
  for (auto& m : st.members) {
    m = kernel.ipc().AllocatePort(task);
    ASSERT_EQ(kernel.ipc().AddToSet(m, st.set), KernReturn::kSuccess);
  }
  st.expected = 60;
  kernel.CreateUserThread(task, &SetServer, &st);
  kernel.CreateUserThread(task, &SetClient, &st);
  kernel.Run();
  EXPECT_EQ(st.received, 60);
  // Messages from all three members were seen (header.dest identifies the
  // member port the message was sent to).
  EXPECT_EQ(st.seen_dests.size(), 3u);
}

TEST_P(PortSetModelTest, QueuedMessagesOnMembersDrainFairly) {
  Kernel kernel(Config());
  Task* task = kernel.CreateTask("t");
  static SetServerState st;
  st = SetServerState{};
  st.set = kernel.ipc().AllocatePortSet(task);
  for (auto& m : st.members) {
    m = kernel.ipc().AllocatePort(task);
    ASSERT_EQ(kernel.ipc().AddToSet(m, st.set), KernReturn::kSuccess);
  }
  st.expected = 30;
  // Sender first: everything queues before the receiver ever looks.
  kernel.CreateUserThread(task, &SetClient, &st);
  kernel.CreateUserThread(task, &SetServer, &st);
  kernel.Run();
  EXPECT_EQ(st.received, 30);
  EXPECT_EQ(st.seen_dests.size(), 3u);
}

TEST_P(PortSetModelTest, SetMembershipRules) {
  Kernel kernel(Config());
  Task* task = kernel.CreateTask("t");
  PortId set1 = kernel.ipc().AllocatePortSet(task);
  PortId set2 = kernel.ipc().AllocatePortSet(task);
  PortId port = kernel.ipc().AllocatePort(task);

  EXPECT_EQ(kernel.ipc().AddToSet(port, set1), KernReturn::kSuccess);
  // Already in a set.
  EXPECT_EQ(kernel.ipc().AddToSet(port, set2), KernReturn::kInvalidRight);
  // A set cannot join a set.
  EXPECT_EQ(kernel.ipc().AddToSet(set2, set1), KernReturn::kInvalidName);
  // Adding to a non-set fails.
  PortId plain = kernel.ipc().AllocatePort(task);
  EXPECT_EQ(kernel.ipc().AddToSet(plain, port), KernReturn::kInvalidName);

  EXPECT_EQ(kernel.ipc().RemoveFromSet(port), KernReturn::kSuccess);
  EXPECT_EQ(kernel.ipc().RemoveFromSet(port), KernReturn::kInvalidName);
  EXPECT_EQ(kernel.ipc().AddToSet(port, set2), KernReturn::kSuccess);
}

struct TimeoutState {
  PortId port = kInvalidPort;
  KernReturn result = KernReturn::kSuccess;
  Ticks waited = 0;
};

void TimeoutReceiver(void* arg) {
  auto* st = static_cast<TimeoutState*>(arg);
  UserMessage msg;
  Ticks before = ActiveKernel().clock().Now();
  st->result = UserMachMsg(&msg, kMsgRcvOpt, 0, kMaxInlineBytes, st->port,
                           /*timeout=*/5000);
  st->waited = ActiveKernel().clock().Now() - before;
}

TEST_P(PortSetModelTest, ReceiveTimesOutWhenNothingArrives) {
  Kernel kernel(Config());
  Task* task = kernel.CreateTask("t");
  TimeoutState st;
  st.port = kernel.ipc().AllocatePort(task);
  kernel.CreateUserThread(task, &TimeoutReceiver, &st);
  kernel.Run();
  EXPECT_EQ(st.result, KernReturn::kRcvTimedOut);
  EXPECT_GE(st.waited, 5000u);
}

struct TimelySendState {
  PortId port = kInvalidPort;
  KernReturn rcv_result = KernReturn::kFailure;
};

TEST_P(PortSetModelTest, MessageBeforeDeadlineBeatsTheTimeout) {
  Kernel kernel(Config());
  Task* task = kernel.CreateTask("t");
  static TimelySendState st;
  st = TimelySendState{};
  st.port = kernel.ipc().AllocatePort(task);
  kernel.CreateUserThread(
      task,
      [](void*) {
        UserMessage msg;
        st.rcv_result = UserMachMsg(&msg, kMsgRcvOpt, 0, kMaxInlineBytes, st.port,
                                    /*timeout=*/100000);
      },
      nullptr);
  kernel.CreateUserThread(
      task,
      [](void*) {
        UserWork(500);
        UserMessage msg;
        msg.header.dest = st.port;
        UserMachMsg(&msg, kMsgSendOpt, 8, 0, kInvalidPort);
        // Let virtual time roll past the receiver's deadline: the stale
        // timeout must not fire on the completed wait.
        UserWork(200000);
      },
      nullptr);
  kernel.Run();
  EXPECT_EQ(st.rcv_result, KernReturn::kSuccess);
}

INSTANTIATE_TEST_SUITE_P(AllModels, PortSetModelTest,
                         testing::Values(ControlTransferModel::kMach25,
                                         ControlTransferModel::kMK32,
                                         ControlTransferModel::kMK40),
                         [](const testing::TestParamInfo<ControlTransferModel>& info) {
                           switch (info.param) {
                             case ControlTransferModel::kMach25:
                               return "Mach25";
                             case ControlTransferModel::kMK32:
                               return "MK32";
                             case ControlTransferModel::kMK40:
                               return "MK40";
                           }
                           return "unknown";
                         });

}  // namespace
}  // namespace mkc
