// netipc tests: cross-node RPC correctness (lossless and lossy links),
// Table-5 stack accounting for the blocked protocol threads, proxy-port GC
// through the DestroyPort death hook, timed receives resuming via
// continuation, and cluster determinism.
#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <string>

#include "src/core/trace.h"
#include "src/ipc/ipc_space.h"
#include "src/ipc/mach_msg.h"
#include "src/ipc/ool.h"
#include "src/kern/kernel.h"
#include "src/kern/thread.h"
#include "src/net/cluster.h"
#include "src/net/link.h"
#include "src/net/netipc.h"
#include "src/obs/metrics.h"
#include "src/obs/span.h"
#include "src/task/task.h"
#include "src/task/usermode.h"
#include "src/vm/vm_system.h"

namespace mkc {
namespace {

ClusterRpcParams SmallParams() {
  ClusterRpcParams p;
  p.clients = 2;
  p.requests_per_client = 5;
  return p;
}

// --- Correctness ------------------------------------------------------------

TEST(NetIpcTest, CrossNodeRpcCompletes) {
  KernelConfig config;
  Cluster cluster(config, 2);
  ClusterReport r = RunClusterRpcWorkload(cluster, SmallParams());
  EXPECT_EQ(r.rpcs_ok, 10u);
  EXPECT_EQ(r.rpcs_failed, 0u);
  EXPECT_EQ(r.net.msgs_in, 20u);  // 10 requests + 10 replies crossed the wire.
  // The base retransmit deadline covers a round trip: a lossless link never
  // retransmits.
  EXPECT_EQ(r.net.retransmits, 0u);
  EXPECT_EQ(r.net.give_ups, 0u);
}

TEST(NetIpcTest, FourNodesRoundRobin) {
  KernelConfig config;
  Cluster cluster(config, 4);
  ClusterRpcParams p;
  p.clients = 3;  // One client per server node.
  p.requests_per_client = 4;
  ClusterReport r = RunClusterRpcWorkload(cluster, p);
  EXPECT_EQ(r.rpcs_ok, 12u);
  EXPECT_EQ(r.rpcs_failed, 0u);
  EXPECT_EQ(r.net.give_ups, 0u);
}

TEST(NetIpcTest, LossyLinkRetransmitsAndCompletes) {
  KernelConfig config;
  LinkConfig link;
  link.drop_per_mille = 100;  // A brutal 10% loss rate.
  Cluster cluster(config, 2, link);
  ClusterRpcParams p;
  p.clients = 4;
  p.requests_per_client = 25;
  ClusterReport r = RunClusterRpcWorkload(cluster, p);
  // Every RPC still completes: loss costs retransmits, never answers.
  EXPECT_EQ(r.rpcs_ok, 100u);
  EXPECT_EQ(r.rpcs_failed, 0u);
  EXPECT_GT(r.net.drops, 0u);
  EXPECT_GT(r.net.retransmits, 0u);
  EXPECT_EQ(r.net.give_ups, 0u);
}

TEST(NetIpcTest, DuplicatingLinkDeliversEachMessageOnce) {
  KernelConfig config;
  LinkConfig link;
  link.dup_per_mille = 200;
  Cluster cluster(config, 2, link);
  ClusterReport r = RunClusterRpcWorkload(cluster, SmallParams());
  EXPECT_EQ(r.rpcs_ok, 10u);
  EXPECT_EQ(r.rpcs_failed, 0u);
  EXPECT_GT(r.net.dups, 0u);
  // Duplicated DATA is recognized by sequence number and only re-acked.
  EXPECT_EQ(r.net.msgs_in, 20u);
}

// --- Table-5 stack accounting ----------------------------------------------

TEST(NetIpcTest, BlockedProtocolThreadsHoldNoStacks) {
  KernelConfig config;  // MK40: blocks with continuations.
  Cluster cluster(config, 2);
  RunClusterRpcWorkload(cluster, SmallParams());
  for (int i = 0; i < 2; ++i) {
    Thread* out = cluster.netipc(i).out_thread();
    Thread* engine = cluster.netipc(i).engine_thread();
    // Both protocol threads idle in their receive waits...
    EXPECT_EQ(out->state, ThreadState::kWaiting);
    EXPECT_EQ(engine->state, ThreadState::kWaiting);
    // ...with no kernel stack (§3.3 — the paper's netmsgserver argument)...
    EXPECT_EQ(out->kernel_stack, nullptr);
    EXPECT_EQ(engine->kernel_stack, nullptr);
    // ...and their own protocol continuations, which carry their own
    // specialized entries in the recognition table (wakeup absorption) —
    // distinct from mach_msg_continue's handoff entry.
    EXPECT_EQ(out->continuation, &NetIpcRecvContinue);
    EXPECT_EQ(engine->continuation, &NetIpcAckContinue);
  }
}

TEST(NetIpcTest, ProcessModelProtocolThreadsKeepStacks) {
  KernelConfig config;
  config.model = ControlTransferModel::kMach25;
  Cluster cluster(config, 2);
  ClusterReport r = RunClusterRpcWorkload(cluster, SmallParams());
  EXPECT_EQ(r.rpcs_ok, 10u);
  EXPECT_EQ(r.rpcs_failed, 0u);
  for (int i = 0; i < 2; ++i) {
    // The process model blocks by saving context: the stacks stay bound.
    EXPECT_NE(cluster.netipc(i).out_thread()->kernel_stack, nullptr);
    EXPECT_NE(cluster.netipc(i).engine_thread()->kernel_stack, nullptr);
  }
}

// --- Proxy lifecycle --------------------------------------------------------

TEST(NetIpcTest, BindProxyDedupsAndGcsOnLocalDeath) {
  KernelConfig config;
  Cluster cluster(config, 2);
  Task* task = cluster.node(1).CreateTask("svc");
  PortId svc = cluster.node(1).ipc().AllocatePort(task);

  PortId proxy = cluster.netipc(0).BindProxy(1, svc);
  EXPECT_EQ(cluster.netipc(0).proxy_count(), 1u);
  // Rebinding the same remote target reuses the proxy.
  EXPECT_EQ(cluster.netipc(0).BindProxy(1, svc), proxy);
  EXPECT_EQ(cluster.netipc(0).proxy_count(), 1u);

  // Destroying the proxy unbinds it through the port-death hook...
  cluster.node(0).ipc().DestroyPort(proxy);
  EXPECT_EQ(cluster.netipc(0).proxy_count(), 0u);
  // ...and a later bind mints a fresh proxy.
  PortId again = cluster.netipc(0).BindProxy(1, svc);
  EXPECT_NE(again, proxy);
  EXPECT_EQ(cluster.netipc(0).proxy_count(), 1u);
}

struct OneShotServerArgs {
  PortId port = kInvalidPort;
};

void OneShotServer(void* arg) {
  auto* s = static_cast<OneShotServerArgs*>(arg);
  UserMessage msg;
  if (UserServeOnce(&msg, 0, s->port) != KernReturn::kSuccess) {
    return;
  }
  msg.header.dest = msg.header.reply;
  UserServeOnce(&msg, 16, s->port);  // Reply, then park (daemon thread).
}

struct OneRpcArgs {
  PortId proxy = kInvalidPort;
  PortId reply = kInvalidPort;
  KernReturn result = KernReturn::kFailure;
};

void OneRpcClient(void* arg) {
  auto* a = static_cast<OneRpcArgs*>(arg);
  UserMessage msg;
  msg.header.dest = a->proxy;
  a->result = UserRpc(&msg, 16, a->reply);
}

TEST(NetIpcTest, PortDeathGcsRemoteReplyProxy) {
  KernelConfig config;
  Cluster cluster(config, 2);

  OneShotServerArgs server;
  Task* stask = cluster.node(1).CreateTask("svc");
  server.port = cluster.node(1).ipc().AllocatePort(stask);
  ThreadOptions daemon;
  daemon.daemon = true;
  daemon.priority = 20;
  cluster.node(1).CreateUserThread(stask, &OneShotServer, &server, daemon);

  OneRpcArgs rpc;
  Task* ctask = cluster.node(0).CreateTask("cli");
  rpc.proxy = cluster.netipc(0).BindProxy(1, server.port);
  rpc.reply = cluster.node(0).ipc().AllocatePort(ctask);
  cluster.node(0).CreateUserThread(ctask, &OneRpcClient, &rpc);

  Cluster* c = &cluster;
  c->Run();
  c->Drain();
  ASSERT_EQ(rpc.result, KernReturn::kSuccess);
  // The reply came back through a proxy node 1 bound for node 0's reply port.
  EXPECT_EQ(cluster.netipc(1).proxy_count(), 1u);
  EXPECT_EQ(cluster.netipc(1).stats().proxy_gcs, 0u);

  // Killing the exported reply port broadcasts PORT_DEATH; the remote proxy
  // entry is reclaimed once the packet is delivered.
  cluster.node(0).ipc().DestroyPort(rpc.reply);
  c->Drain();
  EXPECT_EQ(cluster.netipc(1).proxy_count(), 0u);
  EXPECT_EQ(cluster.netipc(1).stats().proxy_gcs, 1u);
}

// --- Timed receives (the retransmit engine's blocking primitive) ------------

struct TimedRecvEnv {
  PortId port = kInvalidPort;
  Thread* receiver = nullptr;
  ThreadState observed_state = ThreadState::kEmbryo;
  KernelStack* observed_stack = nullptr;
  Continuation observed_cont = nullptr;
  bool observed = false;
  KernReturn result = KernReturn::kSuccess;
  bool done = false;
};

TimedRecvEnv* g_timed = nullptr;

void TimedReceiver(void*) {
  UserMessage msg;
  g_timed->result =
      UserMachMsg(&msg, kMsgRcvOpt, 0, kMaxInlineBytes, g_timed->port, 5000);
  g_timed->done = true;
}

void TimedWatcher(void*) {
  // Runs while the receiver is parked in its timed receive.
  g_timed->observed_state = g_timed->receiver->state;
  g_timed->observed_stack = g_timed->receiver->kernel_stack;
  g_timed->observed_cont = g_timed->receiver->continuation;
  g_timed->observed = true;
  UserWork(20000);  // Sail past the 5000-tick deadline; the timer fires here.
}

TEST(NetIpcTest, TimedOutReceiveResumesViaContinuation) {
  KernelConfig config;  // MK40.
  TimedRecvEnv env;
  g_timed = &env;
  Kernel kernel(config);
  Task* task = kernel.CreateTask("timed");
  env.port = kernel.ipc().AllocatePort(task);
  ThreadOptions high;
  high.priority = 28;  // Blocks before the watcher looks.
  env.receiver = kernel.CreateUserThread(task, &TimedReceiver, nullptr, high);
  kernel.CreateUserThread(task, &TimedWatcher, nullptr);
  kernel.Run();
  g_timed = nullptr;

  ASSERT_TRUE(env.observed);
  ASSERT_TRUE(env.done);
  // While parked the receiver held no stack — only its continuation — and
  // the timeout resumed it through that continuation, not a saved context.
  EXPECT_EQ(env.observed_state, ThreadState::kWaiting);
  EXPECT_EQ(env.observed_stack, nullptr);
  EXPECT_EQ(env.observed_cont, &MachMsgContinue);
  EXPECT_EQ(env.result, KernReturn::kRcvTimedOut);
}

// A receive that times out and is retried must stay on the caller's causal
// chain: when the request finally lands, the server adopts the client's RPC
// span — the same span the client's UserRpc began — with no second span
// created by the retry.
struct TimeoutSpanEnv {
  PortId service = kInvalidPort;
  PortId reply = kInvalidPort;
  Thread* server = nullptr;
  KernReturn first_result = KernReturn::kSuccess;
  std::uint32_t server_span = 0;
  bool client_done = false;
};

TimeoutSpanEnv* g_tspan = nullptr;

void TimeoutThenServe(void*) {
  UserMessage msg;
  // First receive deliberately times out — the client sends late.
  g_tspan->first_result =
      UserMachMsg(&msg, kMsgRcvOpt, 0, kMaxInlineBytes, g_tspan->service, 5000);
  // Retry the same endpoint without a deadline; the request's delivery
  // adopts this thread into the client's span.
  ASSERT_EQ(UserMachMsg(&msg, kMsgRcvOpt, 0, kMaxInlineBytes, g_tspan->service),
            KernReturn::kSuccess);
  g_tspan->server_span = g_tspan->server->span_id;
  msg.header.dest = msg.header.reply;
  ASSERT_EQ(UserMachMsg(&msg, kMsgSendOpt, 8, 0, kInvalidPort), KernReturn::kSuccess);
}

void LateRpcClient(void*) {
  UserWork(20000);  // Sail past the server's 5000-tick receive deadline.
  UserMessage msg;
  msg.header.dest = g_tspan->service;
  ASSERT_EQ(UserRpc(&msg, 8, g_tspan->reply), KernReturn::kSuccess);
  g_tspan->client_done = true;
}

TEST(NetIpcTest, SpanAdoptionSurvivesReceiveTimeoutRetry) {
  KernelConfig config;  // MK40.
  config.trace_capacity = 8192;
  TimeoutSpanEnv env;
  g_tspan = &env;
  Kernel kernel(config);
  Task* task = kernel.CreateTask("tspan");
  env.service = kernel.ipc().AllocatePort(task);
  env.reply = kernel.ipc().AllocatePort(task);
  ThreadOptions high;
  high.priority = 28;  // The server parks in its timed receive first.
  high.daemon = true;
  env.server = kernel.CreateUserThread(task, &TimeoutThenServe, nullptr, high);
  kernel.CreateUserThread(task, &LateRpcClient, nullptr);
  kernel.Run();
  g_tspan = nullptr;

  // The timeout really happened, and the RPC still completed.
  EXPECT_EQ(env.first_result, KernReturn::kRcvTimedOut);
  ASSERT_TRUE(env.client_done);

  // Exactly one RPC span was begun (the retry created no fresh chain) and
  // the server served the request *inside* it.
  std::uint32_t rpc_span = 0;
  int rpc_spans_begun = 0;
  kernel.trace().ForEach([&](const TraceRecord& rec) {
    if (rec.event == TraceEvent::kSpanBegin &&
        rec.aux == static_cast<std::uint32_t>(SpanKind::kRpc)) {
      ++rpc_spans_begun;
      rpc_span = rec.span;
    }
  });
  EXPECT_EQ(rpc_spans_begun, 1);
  ASSERT_NE(rpc_span, 0u);
  EXPECT_EQ(env.server_span, rpc_span);
}

// --- Causality and determinism ----------------------------------------------

TEST(NetIpcTest, RpcSpanChainsAcrossNodes) {
  KernelConfig config;
  config.trace_capacity = 8192;
  Cluster cluster(config, 2);
  ClusterRpcParams p;
  p.clients = 1;
  p.requests_per_client = 1;
  ClusterReport r = RunClusterRpcWorkload(cluster, p);
  ASSERT_EQ(r.rpcs_ok, 1u);

  std::set<std::uint32_t> tx0, rx1;
  cluster.node(0).trace().ForEach([&](const TraceRecord& rec) {
    if (rec.event == TraceEvent::kNetTx && rec.span != 0) {
      tx0.insert(rec.span);
    }
  });
  cluster.node(1).trace().ForEach([&](const TraceRecord& rec) {
    if (rec.event == TraceEvent::kNetRx && rec.span != 0) {
      rx1.insert(rec.span);
    }
  });
  // The request's span id leaves node 0 and shows up verbatim on node 1:
  // one causal chain across the wire.
  ASSERT_FALSE(tx0.empty());
  bool shared = false;
  for (std::uint32_t s : tx0) {
    if (rx1.count(s) > 0) {
      shared = true;
    }
  }
  EXPECT_TRUE(shared);
}

// --- v2 selective repeat ----------------------------------------------------

TEST(NetIpcTest, SteadyStateRpcPiggybacksAcks) {
  KernelConfig config;
  Cluster cluster(config, 2);
  ClusterRpcParams p;
  p.clients = 4;
  p.requests_per_client = 25;
  ClusterReport r = RunClusterRpcWorkload(cluster, p);
  ASSERT_EQ(r.rpcs_ok, 100u);
  // In steady-state RPC every ack rides a reply DATA packet; standalone
  // ACKs only mop up the tail when traffic pauses.
  EXPECT_GT(r.net.acks_piggybacked, 100u);
  EXPECT_LT(r.net.acks_tx, 10u);
  // Goodput accounting: payload bytes are a strict subset of wire bytes.
  EXPECT_GT(r.net.bytes_goodput, 0u);
  EXPECT_LT(r.net.bytes_goodput, r.net.bytes_tx);
}

TEST(NetIpcTest, ReorderingLinkBuffersOutOfOrderDeliversInOrder) {
  KernelConfig config;
  LinkConfig link;
  link.reorder_per_mille = 300;
  Cluster cluster(config, 2, link);
  ClusterRpcParams p;
  p.clients = 4;
  p.requests_per_client = 25;
  ClusterReport r = RunClusterRpcWorkload(cluster, p);
  // Reordering costs buffering, never answers: every RPC completes and
  // every message is handed to mach_msg exactly once, in channel order.
  EXPECT_EQ(r.rpcs_ok, 100u);
  EXPECT_EQ(r.rpcs_failed, 0u);
  EXPECT_EQ(r.net.msgs_in, 200u);
  EXPECT_GT(r.net.reorders, 0u);
  EXPECT_GT(r.net.rx_ooo_buffered, 0u);
  EXPECT_EQ(r.net.give_ups, 0u);
}

TEST(NetIpcTest, SackHolesTriggerFastRetransmit) {
  KernelConfig config;
  LinkConfig link;
  link.drop_per_mille = 50;
  Cluster cluster(config, 2, link);
  ClusterRpcParams p;
  p.clients = 4;
  p.requests_per_client = 25;
  ClusterReport r = RunClusterRpcWorkload(cluster, p);
  EXPECT_EQ(r.rpcs_ok, 100u);
  EXPECT_EQ(r.rpcs_failed, 0u);
  // A SACK bitmap acking packets above a hole is retransmit evidence the
  // go-back-N engine never had: the hole resends before its timer fires.
  EXPECT_GT(r.net.fast_retransmits, 0u);
  EXPECT_EQ(r.net.give_ups, 0u);
}

TEST(NetIpcTest, ResponseBurstsCoalesceIntoFrames) {
  KernelConfig config;
  LinkConfig link;
  link.reorder_per_mille = 300;
  Cluster cluster(config, 2, link);
  ClusterRpcParams p;
  p.clients = 4;
  p.requests_per_client = 50;
  ClusterReport r = RunClusterRpcWorkload(cluster, p);
  EXPECT_EQ(r.rpcs_ok, 200u);
  // One SACK exposing several holes answers with several small DATA
  // retransmits to the same peer — packed into one FRAME_BATCH.
  EXPECT_GT(r.net.frames_coalesced, 0u);
}

TEST(NetIpcTest, ReorderedLossyClusterRunsAreDeterministic) {
  auto run = [] {
    KernelConfig config;
    LinkConfig link;
    link.drop_per_mille = 20;
    link.reorder_per_mille = 100;
    Cluster cluster(config, 4, link);
    ClusterRpcParams p;
    p.clients = 4;
    p.requests_per_client = 10;
    RunClusterRpcWorkload(cluster, p);
    std::string dump;
    for (int i = 0; i < 4; ++i) {
      dump += cluster.node(i).metrics().DumpJsonString();
      dump += '\n';
    }
    return dump;
  };
  std::string first = run();
  std::string second = run();
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

TEST(NetIpcTest, GoBackNAblationSpeaksTheLegacyWireFormat) {
  KernelConfig config;
  config.netipc_gbn = true;
  Cluster cluster(config, 2);
  ClusterReport r = RunClusterRpcWorkload(cluster, SmallParams());
  EXPECT_EQ(r.rpcs_ok, 10u);
  EXPECT_EQ(r.rpcs_failed, 0u);
  // The ablation runs the historical protocol: one immediate 48-byte ACK
  // per DATA, no piggybacking, no coalescing, no SACK machinery.
  EXPECT_EQ(r.net.acks_tx, 20u);
  EXPECT_EQ(r.net.acks_piggybacked, 0u);
  EXPECT_EQ(r.net.frames_coalesced, 0u);
  EXPECT_EQ(r.net.fast_retransmits, 0u);
  EXPECT_EQ(r.net.rx_ooo_buffered, 0u);
  // 20 DATA packets of (48-byte header + 64-byte body) + 20 bare-header
  // ACKs: the byte count pins the legacy framing exactly.
  EXPECT_EQ(r.net.bytes_tx, 20u * (kWireHeaderBytesGbn + 64) +
                                20u * kWireHeaderBytesGbn);
}

TEST(NetIpcTest, RetransmitBackoffIsCappedAndGivesUp) {
  KernelConfig config;
  LinkConfig link;
  link.drop_per_mille = 1000;  // Total blackout: nothing ever arrives.
  Cluster cluster(config, 2, link);
  ClusterRpcParams p;
  p.clients = 1;
  p.requests_per_client = 1;
  ClusterReport r = RunClusterRpcWorkload(cluster, p);
  // The send exhausts its attempt budget and fails the RPC dead-name style.
  EXPECT_EQ(r.rpcs_ok, 0u);
  EXPECT_EQ(r.rpcs_failed, 1u);
  EXPECT_GT(r.net.give_ups, 0u);
  EXPECT_EQ(r.net.retransmits, kNetMaxSendAttempts - 1);
  // The backoff shift is capped: the full budget of a single entry is
  // rto * (2^0 + ... + 2^kNetMaxBackoffShift) ticks. A run that exceeds a
  // small multiple of that would mean the exponent kept growing.
  const Ticks budget = kNetRetransmitBase * ((2u << kNetMaxBackoffShift) - 1);
  EXPECT_LT(r.virtual_time, 2 * budget);
}

// --- v2 lazy-pull OOL -------------------------------------------------------

TEST(NetIpcTest, TouchedOolPullsAcrossTheWire) {
  KernelConfig config;
  Cluster cluster(config, 2);
  ClusterRpcParams p;
  p.clients = 2;
  p.requests_per_client = 5;
  p.ool_bytes = 8192;
  p.ool_every = 1;  // Every request carries an 8 KiB region.
  ClusterReport r = RunClusterRpcWorkload(cluster, p);
  EXPECT_EQ(r.rpcs_ok, 10u);
  EXPECT_EQ(r.rpcs_failed, 0u);
  // The server's first touch of each region drives one pull round trip;
  // every payload byte crosses the wire exactly when demanded.
  EXPECT_EQ(r.net.ool_pulls, 10u);
  EXPECT_EQ(r.net.ool_pushes, 10u);
  EXPECT_EQ(r.net.ool_bytes_pulled, 10u * 8192u);
  EXPECT_EQ(r.net.ool_pull_fails, 0u);
}

TEST(NetIpcTest, UntouchedOolShipsNoPayloadBytes) {
  auto run = [](bool touch) {
    KernelConfig config;
    Cluster cluster(config, 2);
    ClusterRpcParams p;
    p.clients = 2;
    p.requests_per_client = 5;
    p.ool_bytes = 8192;
    p.ool_every = 1;
    p.ool_touch = touch;
    return RunClusterRpcWorkload(cluster, p);
  };
  ClusterReport touched = run(true);
  ClusterReport untouched = run(false);
  ASSERT_EQ(untouched.rpcs_ok, 10u);
  // NORMA-style copy avoidance: a region the receiver never references
  // costs descriptor bytes only — no pull, no payload on the wire.
  EXPECT_EQ(untouched.net.ool_pulls, 0u);
  EXPECT_EQ(untouched.net.ool_bytes_pulled, 0u);
  EXPECT_GT(touched.net.bytes_tx, untouched.net.bytes_tx + 10u * 8192u);
}

TEST(NetIpcTest, OolPullSurvivesLoss) {
  KernelConfig config;
  LinkConfig link;
  link.drop_per_mille = 50;
  Cluster cluster(config, 2, link);
  ClusterRpcParams p;
  p.clients = 2;
  p.requests_per_client = 10;
  p.ool_bytes = 4096;
  p.ool_every = 2;
  ClusterReport r = RunClusterRpcWorkload(cluster, p);
  // Dropped OOL_PULL and OOL_DATA packets retransmit like any sequenced
  // traffic: every touch completes, every RPC answers.
  EXPECT_EQ(r.rpcs_ok, 20u);
  EXPECT_EQ(r.rpcs_failed, 0u);
  EXPECT_EQ(r.net.ool_pulls, 10u);
  EXPECT_EQ(r.net.ool_bytes_pulled, 10u * 4096u);
  EXPECT_EQ(r.net.ool_pull_fails, 0u);
  EXPECT_GT(r.net.retransmits + r.net.fast_retransmits, 0u);
}

struct OolExhaustEnv {
  PortId port = kInvalidPort;
  Network* net = nullptr;
  bool touched = false;  // Must stay false: the touch dead-names instead.
};

void OolExhaustServer(void* arg) {
  auto* e = static_cast<OolExhaustEnv*>(arg);
  UserMessage msg;
  if (UserServeOnce(&msg, 0, e->port) != KernReturn::kSuccess) {
    return;
  }
  OolDescriptor desc;
  std::memcpy(&desc, msg.body, sizeof(desc));
  // Partition the network before the first touch: the OOL_PULL and all its
  // retransmits are lost, so the pull exhausts its budget.
  e->net->SetDropPerMille(1000);
  UserTouch(desc.addr, /*write=*/false);
  e->touched = true;
}

struct OolOneWayClientArgs {
  PortId proxy = kInvalidPort;
};

void OolOneWayClient(void* arg) {
  auto* a = static_cast<OolOneWayClientArgs*>(arg);
  UserMessage msg;
  msg.header = MessageHeader{};
  msg.header.dest = a->proxy;
  OolDescriptor desc;
  desc.size = 8192;
  desc.addr = UserVmAllocate(desc.size, /*paged=*/false);
  for (VmSize off = 0; off < desc.size; off += kPageSize) {
    UserTouch(desc.addr + off, /*write=*/true);
  }
  std::memcpy(msg.body, &desc, sizeof(desc));
  MarkMessageOol(msg.header);
  UserMachMsg(&msg, kMsgSendOpt | kMsgOolOpt, sizeof(desc), 0, kInvalidPort);
}

TEST(NetIpcTest, ExhaustedOolPullDeadNamesTheToucher) {
  KernelConfig config;
  Cluster cluster(config, 2);

  OolExhaustEnv server;
  server.net = &cluster.network();
  Task* stask = cluster.node(1).CreateTask("svc");
  server.port = cluster.node(1).ipc().AllocatePort(stask);
  cluster.node(1).CreateUserThread(stask, &OolExhaustServer, &server);

  OolOneWayClientArgs client;
  Task* ctask = cluster.node(0).CreateTask("cli");
  client.proxy = cluster.netipc(0).BindProxy(1, server.port);
  cluster.node(0).CreateUserThread(ctask, &OolOneWayClient, &client);

  cluster.Run();
  cluster.Drain();

  // The pull never completed: the import failed, the faulting access raised
  // a bad-access exception (dead-name semantics for memory), and with no
  // exception server the toucher was terminated mid-touch.
  EXPECT_FALSE(server.touched);
  EXPECT_GE(cluster.netipc(1).stats().ool_pull_fails, 1u);
  EXPECT_GE(cluster.node(1).vm().stats().protection_exceptions, 1u);
}

TEST(NetIpcTest, V2LossyOolKeepsProtocolThreadsStackless) {
  KernelConfig config;  // MK40: blocks with continuations.
  LinkConfig link;
  link.drop_per_mille = 50;
  link.reorder_per_mille = 100;
  Cluster cluster(config, 2, link);
  ClusterRpcParams p;
  p.clients = 2;
  p.requests_per_client = 10;
  p.ool_bytes = 4096;
  p.ool_every = 2;
  ClusterReport r = RunClusterRpcWorkload(cluster, p);
  ASSERT_EQ(r.rpcs_ok, 20u);
  // The v2 engine — SACK scans, frame batching, lazy pulls and all — still
  // parks both protocol threads stackless on their continuations (§3.3).
  for (int i = 0; i < 2; ++i) {
    Thread* out = cluster.netipc(i).out_thread();
    Thread* engine = cluster.netipc(i).engine_thread();
    EXPECT_EQ(out->state, ThreadState::kWaiting);
    EXPECT_EQ(engine->state, ThreadState::kWaiting);
    EXPECT_EQ(out->kernel_stack, nullptr);
    EXPECT_EQ(engine->kernel_stack, nullptr);
    EXPECT_EQ(out->continuation, &NetIpcRecvContinue);
    EXPECT_EQ(engine->continuation, &NetIpcAckContinue);
  }
}

TEST(NetIpcTest, LossyClusterRunsAreDeterministic) {
  auto run = [] {
    KernelConfig config;
    LinkConfig link;
    link.drop_per_mille = 20;
    Cluster cluster(config, 3, link);
    ClusterRpcParams p;
    p.clients = 4;
    p.requests_per_client = 10;
    RunClusterRpcWorkload(cluster, p);
    std::string dump;
    for (int i = 0; i < 3; ++i) {
      dump += cluster.node(i).metrics().DumpJsonString();
      dump += '\n';
    }
    return dump;
  };
  std::string first = run();
  std::string second = run();
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace mkc
