// Tests of the core continuation machinery itself: stack discard and reuse
// invariants, recognition behavior, ablation semantics, tracing, and a
// randomized property sweep.
#include <gtest/gtest.h>

#include <cstring>

#include "src/base/rng.h"
#include "src/core/control.h"
#include "src/core/trace.h"
#include "src/exc/exception.h"
#include "src/ipc/ipc_space.h"
#include "src/ipc/mach_msg.h"
#include "src/kern/kernel.h"
#include "src/task/task.h"
#include "src/task/usermode.h"
#include "src/vm/vm_system.h"

namespace mkc {
namespace {

// --- Stack invariants -------------------------------------------------------

struct InvariantState {
  PortId service_port = kInvalidPort;
  PortId reply_port = kInvalidPort;
  int iterations = 0;
  std::uint64_t violations = 0;
};

// Checks, from inside the running system, the §3.4 invariant: every thread
// blocked with a continuation owns no kernel stack; every stack is owned by
// the running thread, a process-model-blocked thread, or the free pool.
void CheckStackInvariant(std::uint64_t* violations) {
  Kernel& k = ActiveKernel();
  for (const auto& t : k.threads()) {
    if (t->state == ThreadState::kWaiting && t->continuation != nullptr &&
        t->kernel_stack != nullptr) {
      ++*violations;
    }
    if (t->state == ThreadState::kRunning && t->kernel_stack == nullptr) {
      ++*violations;
    }
  }
}

void InvariantServer(void* arg) {
  auto* st = static_cast<InvariantState*>(arg);
  UserMessage msg;
  if (UserServeOnce(&msg, 0, st->service_port) != KernReturn::kSuccess) {
    return;
  }
  for (;;) {
    CheckStackInvariant(&st->violations);
    msg.header.dest = msg.header.reply;
    if (UserServeOnce(&msg, 8, st->service_port) != KernReturn::kSuccess) {
      return;
    }
  }
}

void InvariantClient(void* arg) {
  auto* st = static_cast<InvariantState*>(arg);
  UserMessage msg;
  for (int i = 0; i < st->iterations; ++i) {
    msg.header.dest = st->service_port;
    UserRpc(&msg, 8, st->reply_port);
    CheckStackInvariant(&st->violations);
  }
}

TEST(ContinuationInvariants, BlockedWithContinuationMeansNoStack) {
  KernelConfig config;
  Kernel kernel(config);
  Task* c = kernel.CreateTask("c");
  Task* s = kernel.CreateTask("s");
  InvariantState st;
  st.service_port = kernel.ipc().AllocatePort(s);
  st.reply_port = kernel.ipc().AllocatePort(c);
  st.iterations = 500;
  ThreadOptions daemon;
  daemon.daemon = true;
  kernel.CreateUserThread(s, &InvariantServer, &st, daemon);
  kernel.CreateUserThread(c, &InvariantClient, &st);
  kernel.Run();
  EXPECT_EQ(st.violations, 0u);
}

// --- Recognition semantics ---------------------------------------------------

TEST(RecognitionTest, DisablingRecognitionKeepsResultsIdentical) {
  for (bool recognition : {true, false}) {
    KernelConfig config;
    config.enable_recognition = recognition;
    Kernel kernel(config);
    Task* c = kernel.CreateTask("c");
    Task* s = kernel.CreateTask("s");
    static InvariantState st;
    st = InvariantState{};
    st.service_port = kernel.ipc().AllocatePort(s);
    st.reply_port = kernel.ipc().AllocatePort(c);
    st.iterations = 100;
    ThreadOptions daemon;
    daemon.daemon = true;
    kernel.CreateUserThread(s, &InvariantServer, &st, daemon);
    kernel.CreateUserThread(c, &InvariantClient, &st);
    kernel.Run();
    EXPECT_EQ(st.violations, 0u);
    if (recognition) {
      EXPECT_GT(kernel.transfer_stats().recognitions, 150u);
    } else {
      // Same behavior, zero recognitions: the fast path becomes
      // call_continuation instead of the inline finish.
      EXPECT_EQ(kernel.transfer_stats().recognitions, 0u);
      EXPECT_GT(kernel.transfer_stats().stack_handoffs, 150u);
    }
  }
}

TEST(RecognitionTest, DisablingHandoffStillDiscardsStacks) {
  KernelConfig config;
  config.enable_handoff = false;
  Kernel kernel(config);
  Task* c = kernel.CreateTask("c");
  Task* s = kernel.CreateTask("s");
  static InvariantState st;
  st = InvariantState{};
  st.service_port = kernel.ipc().AllocatePort(s);
  st.reply_port = kernel.ipc().AllocatePort(c);
  st.iterations = 200;
  ThreadOptions daemon;
  daemon.daemon = true;
  kernel.CreateUserThread(s, &InvariantServer, &st, daemon);
  kernel.CreateUserThread(c, &InvariantClient, &st);
  kernel.Run();
  EXPECT_EQ(st.violations, 0u);
  EXPECT_EQ(kernel.transfer_stats().stack_handoffs, 0u);
  // Discards still happen through thread_dispatch's stack free.
  EXPECT_GT(kernel.transfer_stats().TotalDiscards(), 300u);
}

// --- Tracing ------------------------------------------------------------------

TEST(TraceTest, FastRpcPathProducesFigure2Sequence) {
  KernelConfig config;
  config.trace_capacity = 4096;
  Kernel kernel(config);
  Task* c = kernel.CreateTask("c");
  Task* s = kernel.CreateTask("s");
  static InvariantState st;
  st = InvariantState{};
  st.service_port = kernel.ipc().AllocatePort(s);
  st.reply_port = kernel.ipc().AllocatePort(c);
  st.iterations = 5;
  ThreadOptions daemon;
  daemon.daemon = true;
  kernel.CreateUserThread(s, &InvariantServer, &st, daemon);
  kernel.CreateUserThread(c, &InvariantClient, &st);
  kernel.Run();

  // The Figure 2 signature: a block-with-continuation immediately followed
  // by a handoff and then a recognition, with no switch-context between.
  int figure2_sequences = 0;
  int window = 0;  // 1 = saw block, 2 = saw handoff.
  kernel.trace().ForEach([&](const TraceRecord& r) {
    switch (r.event) {
      case TraceEvent::kBlock:
        window = r.aux2 == 1 ? 1 : 0;
        break;
      case TraceEvent::kHandoff:
        window = window == 1 ? 2 : 0;
        break;
      case TraceEvent::kRecognition:
        if (window == 2) {
          ++figure2_sequences;
        }
        window = 0;
        break;
      case TraceEvent::kSwitchContext:
        window = 0;
        break;
      default:
        break;
    }
  });
  EXPECT_GE(figure2_sequences, 8);  // 5 RPCs = 10 legs, minus warm-up legs.
  EXPECT_GT(kernel.trace().recorded(), 50u);
}

TEST(TraceTest, DisabledTraceRecordsNothing) {
  KernelConfig config;  // trace_capacity = 0.
  Kernel kernel(config);
  Task* t = kernel.CreateTask("t");
  kernel.CreateUserThread(
      t, [](void*) { UserNullSyscall(); }, nullptr);
  kernel.Run();
  EXPECT_EQ(kernel.trace().recorded(), 0u);
  EXPECT_FALSE(kernel.trace().enabled());
}

// --- vm_protect --------------------------------------------------------------

struct ProtectState {
  PortId exc_port = kInvalidPort;
  VmAddress region = 0;
  int write_faults_handled = 0;
  bool done = false;
};

void ProtectServer(void* arg) {
  auto* st = static_cast<ProtectState*>(arg);
  UserMessage msg;
  if (UserServeOnce(&msg, 0, st->exc_port) != KernReturn::kSuccess) {
    return;
  }
  for (;;) {
    ExcRequestBody req;
    std::memcpy(&req, msg.body, sizeof(req));
    ExcReplyBody reply;
    reply.handled = 0;
    if (IsBadAccessCode(req.code)) {
      ++st->write_faults_handled;
      UserVmProtect(st->region, /*writable=*/true);
      reply.handled = 1;
    }
    msg.header.dest = req.reply_port;
    std::memcpy(msg.body, &reply, sizeof(reply));
    if (UserServeOnce(&msg, sizeof(reply), st->exc_port) != KernReturn::kSuccess) {
      return;
    }
  }
}

void ProtectMutator(void* arg) {
  auto* st = static_cast<ProtectState*>(arg);
  UserSetExceptionPort(st->exc_port);
  st->region = UserVmAllocate(4 * kPageSize, /*paged=*/false);
  UserTouch(st->region, /*write=*/true);  // Fault in, writable.
  ASSERT_EQ(UserVmProtect(st->region, /*writable=*/false), KernReturn::kSuccess);
  UserTouch(st->region, /*write=*/false);  // Reads stay legal.
  UserTouch(st->region, /*write=*/true);   // Write trips the barrier once.
  UserTouch(st->region + kPageSize, /*write=*/true);  // Region now writable.
  st->done = true;
}

class VmProtectModelTest : public testing::TestWithParam<ControlTransferModel> {};

TEST_P(VmProtectModelTest, WriteProtectionFaultsAndRecovers) {
  KernelConfig config;
  config.model = GetParam();
  Kernel kernel(config);
  Task* task = kernel.CreateTask("t");
  ProtectState st;
  st.exc_port = kernel.ipc().AllocatePort(task);
  ThreadOptions daemon;
  daemon.daemon = true;
  kernel.CreateUserThread(task, &ProtectServer, &st, daemon);
  kernel.CreateUserThread(task, &ProtectMutator, &st);
  kernel.Run();
  EXPECT_TRUE(st.done);
  EXPECT_EQ(st.write_faults_handled, 1);
  EXPECT_EQ(kernel.vm().stats().protection_exceptions, 1u);
}

TEST_P(VmProtectModelTest, ProtectInvalidAddressFails) {
  KernelConfig config;
  config.model = GetParam();
  Kernel kernel(config);
  Task* task = kernel.CreateTask("t");
  static KernReturn kr;
  kernel.CreateUserThread(
      task, [](void*) { kr = UserVmProtect(0xdeadbeef, false); }, nullptr);
  kernel.Run();
  EXPECT_EQ(kr, KernReturn::kInvalidAddress);
}

INSTANTIATE_TEST_SUITE_P(AllModels, VmProtectModelTest,
                         testing::Values(ControlTransferModel::kMach25,
                                         ControlTransferModel::kMK32,
                                         ControlTransferModel::kMK40),
                         [](const testing::TestParamInfo<ControlTransferModel>& info) {
                           switch (info.param) {
                             case ControlTransferModel::kMach25:
                               return "Mach25";
                             case ControlTransferModel::kMK32:
                               return "MK32";
                             case ControlTransferModel::kMK40:
                               return "MK40";
                           }
                           return "unknown";
                         });

// --- Randomized property sweep ------------------------------------------------

struct ChaosEnv {
  PortId ports[4] = {};
  PortId reply_ports[4] = {};
  PortId exc_port = kInvalidPort;
  VmAddress region = 0;
  int ops_per_thread = 0;
  std::uint64_t seed = 0;
  int completed = 0;
  std::uint64_t violations = 0;
};

struct ChaosArgs {
  ChaosEnv* env = nullptr;
  int index = 0;
};

// An echo server for the chaos clients.
void ChaosServer(void* arg) {
  auto* env = static_cast<ChaosEnv*>(arg);
  UserMessage msg;
  if (UserServeOnce(&msg, 0, env->ports[0]) != KernReturn::kSuccess) {
    return;
  }
  for (;;) {
    msg.header.dest = msg.header.reply;
    if (UserServeOnce(&msg, 16, env->ports[0]) != KernReturn::kSuccess) {
      return;
    }
  }
}

// Randomly mixes every kind of kernel entry the system supports.
void ChaosWorker(void* arg) {
  auto* wa = static_cast<ChaosArgs*>(arg);
  ChaosEnv* env = wa->env;
  Rng rng(env->seed * 97 + static_cast<std::uint64_t>(wa->index));
  UserMessage msg;
  for (int i = 0; i < env->ops_per_thread; ++i) {
    switch (rng.Below(7)) {
      case 0: {  // RPC to the echo server.
        msg.header.dest = env->ports[0];
        UserRpc(&msg, 16, env->reply_ports[wa->index]);
        break;
      }
      case 1:  // Fire-and-forget send to a side port (drained by nobody).
        if (rng.Chance(300)) {
          msg.header.dest = env->ports[1 + rng.Below(3)];
          UserMachMsg(&msg, kMsgSendOpt, 8, 0, kInvalidPort);
        }
        break;
      case 2:
        UserWork(rng.Below(4000));
        break;
      case 3:
        UserTouch(env->region + rng.Below(64) * kPageSize, rng.Chance(500));
        break;
      case 4:
        UserYield();
        break;
      case 5:
        UserRaiseException(kExcSoftware);
        break;
      case 6:
        UserNullSyscall();
        break;
    }
    CheckStackInvariant(&env->violations);
  }
  ++env->completed;
}

void ChaosExcServer(void* arg) {
  auto* env = static_cast<ChaosEnv*>(arg);
  UserMessage msg;
  if (UserServeOnce(&msg, 0, env->exc_port) != KernReturn::kSuccess) {
    return;
  }
  for (;;) {
    ExcRequestBody req;
    std::memcpy(&req, msg.body, sizeof(req));
    ExcReplyBody reply;
    reply.handled = 1;
    msg.header.dest = req.reply_port;
    std::memcpy(msg.body, &reply, sizeof(reply));
    if (UserServeOnce(&msg, sizeof(reply), env->exc_port) != KernReturn::kSuccess) {
      return;
    }
  }
}

class ChaosModelTest
    : public testing::TestWithParam<std::tuple<ControlTransferModel, std::uint64_t>> {};

TEST_P(ChaosModelTest, RandomMixedLoadPreservesInvariants) {
  auto [model, seed] = GetParam();
  KernelConfig config;
  config.model = model;
  config.physical_pages = 96;  // Pressure: pager activity guaranteed.
  Kernel kernel(config);
  Task* task = kernel.CreateTask("chaos");
  Task* server_task = kernel.CreateTask("server");

  static ChaosEnv env;
  env = ChaosEnv{};
  env.ports[0] = kernel.ipc().AllocatePort(server_task);
  for (int i = 1; i < 4; ++i) {
    env.ports[i] = kernel.ipc().AllocatePort(server_task);
  }
  for (auto& rp : env.reply_ports) {
    rp = kernel.ipc().AllocatePort(task);
  }
  env.exc_port = kernel.ipc().AllocatePort(task);
  task->exception_port = env.exc_port;
  env.region = task->map.Allocate(64 * kPageSize, VmBacking::kPaged);
  env.ops_per_thread = 300;
  env.seed = seed;

  ThreadOptions daemon;
  daemon.daemon = true;
  kernel.CreateUserThread(server_task, &ChaosServer, &env, daemon);
  kernel.CreateUserThread(task, &ChaosExcServer, &env, daemon);
  static ChaosArgs args[4];
  for (int i = 0; i < 4; ++i) {
    args[i] = ChaosArgs{&env, i};
    kernel.CreateUserThread(task, &ChaosWorker, &args[i]);
  }
  kernel.Run();

  EXPECT_EQ(env.completed, 4);
  EXPECT_EQ(env.violations, 0u);
  // Conservation: every message sent was either consumed or still queued.
  const auto& ipc = kernel.ipc().stats();
  EXPECT_GE(ipc.messages_sent, 1u);
  if (kernel.UsesContinuations()) {
    const auto& ts = kernel.transfer_stats();
    EXPECT_GT(ts.TotalDiscards() * 100, ts.total_blocks * 90);  // >90% discards.
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ChaosModelTest,
    testing::Combine(testing::Values(ControlTransferModel::kMach25,
                                     ControlTransferModel::kMK32,
                                     ControlTransferModel::kMK40),
                     testing::Values(1u, 2u, 3u, 4u, 5u)),
    [](const testing::TestParamInfo<std::tuple<ControlTransferModel, std::uint64_t>>& info) {
      const char* model = "";
      switch (std::get<0>(info.param)) {
        case ControlTransferModel::kMach25:
          model = "Mach25";
          break;
        case ControlTransferModel::kMK32:
          model = "MK32";
          break;
        case ControlTransferModel::kMK40:
          model = "MK40";
          break;
      }
      return std::string(model) + "_seed" + std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace mkc
