// Tests for the Table 1/2 workload generators: they must run to completion
// in every model and produce the qualitative mixes the paper reports.
#include <gtest/gtest.h>

#include "src/workload/workload.h"

namespace mkc {
namespace {

double Pct(std::uint64_t part, std::uint64_t whole) {
  return whole == 0 ? 0.0 : 100.0 * static_cast<double>(part) / static_cast<double>(whole);
}

class WorkloadModelTest : public testing::TestWithParam<ControlTransferModel> {
 protected:
  KernelConfig Config() {
    KernelConfig config;
    config.model = GetParam();
    return config;
  }
  WorkloadParams Params() {
    WorkloadParams params;
    params.scale = 1;
    return params;
  }
};

TEST_P(WorkloadModelTest, CompileCompletes) {
  WorkloadReport r = RunCompileWorkload(Config(), Params());
  EXPECT_GT(r.transfer.total_blocks, 500u);
  const auto& recv = r.transfer.by_reason[static_cast<int>(BlockReason::kMessageReceive)];
  EXPECT_GT(Pct(recv.blocks, r.transfer.total_blocks), 60.0);
}

TEST_P(WorkloadModelTest, KernelBuildCompletes) {
  WorkloadReport r = RunKernelBuildWorkload(Config(), Params());
  EXPECT_GT(r.transfer.total_blocks, 3000u);
  const auto& recv = r.transfer.by_reason[static_cast<int>(BlockReason::kMessageReceive)];
  EXPECT_GT(Pct(recv.blocks, r.transfer.total_blocks), 60.0);
}

TEST_P(WorkloadModelTest, DosCompletes) {
  WorkloadReport r = RunDosWorkload(Config(), Params());
  EXPECT_GT(r.transfer.total_blocks, 1000u);
  const auto& exc = r.transfer.by_reason[static_cast<int>(BlockReason::kException)];
  // The DOS workload is exception-dominated (paper: 37.9%).
  EXPECT_GT(Pct(exc.blocks, r.transfer.total_blocks), 20.0);
}

TEST_P(WorkloadModelTest, DeterministicAcrossRuns) {
  WorkloadReport a = RunCompileWorkload(Config(), Params());
  WorkloadReport b = RunCompileWorkload(Config(), Params());
  EXPECT_EQ(a.transfer.total_blocks, b.transfer.total_blocks);
  EXPECT_EQ(a.transfer.stack_handoffs, b.transfer.stack_handoffs);
  EXPECT_EQ(a.transfer.recognitions, b.transfer.recognitions);
  EXPECT_EQ(a.virtual_time, b.virtual_time);
}

INSTANTIATE_TEST_SUITE_P(AllModels, WorkloadModelTest,
                         testing::Values(ControlTransferModel::kMach25,
                                         ControlTransferModel::kMK32,
                                         ControlTransferModel::kMK40),
                         [](const testing::TestParamInfo<ControlTransferModel>& info) {
                           switch (info.param) {
                             case ControlTransferModel::kMach25:
                               return "Mach25";
                             case ControlTransferModel::kMK32:
                               return "MK32";
                             case ControlTransferModel::kMK40:
                               return "MK40";
                           }
                           return "unknown";
                         });

// The paper's headline claims, checked quantitatively under MK40.
TEST(WorkloadPaperClaims, Mk40StackDiscardDominates) {
  KernelConfig config;  // MK40 default.
  WorkloadParams params;
  for (const auto& entry : kTableWorkloads) {
    WorkloadReport r = entry.fn(config, params);
    // Table 1: ~98-100% of blocks use continuations and discard the stack.
    EXPECT_GT(Pct(r.transfer.TotalDiscards(), r.transfer.total_blocks), 95.0)
        << entry.name;
    // Table 2: handoff on nearly all transfers, recognition on most.
    EXPECT_GT(Pct(r.transfer.stack_handoffs, r.transfer.total_blocks), 90.0) << entry.name;
    EXPECT_GT(Pct(r.transfer.recognitions, r.transfer.total_blocks), 50.0) << entry.name;
  }
}

TEST(WorkloadPaperClaims, Mk40SteadyStateStacksNearTwo) {
  KernelConfig config;
  WorkloadParams params;
  params.scale = 2;
  WorkloadReport r = RunCompileWorkload(config, params);
  // §3.4: "the number of kernel stacks was, on average, 2.002".
  EXPECT_LT(r.stacks.AverageInUse(), 3.0);
  EXPECT_GE(r.stacks.AverageInUse(), 1.9);
}

TEST(WorkloadPaperClaims, ProcessModelsKeepPerThreadStacks) {
  KernelConfig config;
  config.model = ControlTransferModel::kMK32;
  WorkloadParams params;
  WorkloadReport r = RunCompileWorkload(config, params);
  // MK32: every thread that blocked holds its stack; the average in-use
  // count tracks the thread population, not the processor count.
  EXPECT_GT(r.stacks.AverageInUse(), 4.0);
  EXPECT_EQ(r.transfer.TotalDiscards(), 0u);
}

}  // namespace
}  // namespace mkc
