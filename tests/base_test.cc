// Unit tests for the base substrate: RNG, virtual clock, event queue,
// kern_return names, cost model, cycle conversions.
#include <gtest/gtest.h>

#include <vector>

#include "src/base/kern_return.h"
#include "src/base/rng.h"
#include "src/base/vclock.h"
#include "src/machine/cost_model.h"
#include "src/machine/cycle_model.h"

namespace mkc {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, BelowStaysInRange) {
  Rng rng(99);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Below(17), 17u);
  }
}

TEST(RngTest, RangeIsInclusive) {
  Rng rng(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    std::uint64_t v = rng.Range(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    saw_lo |= v == 3;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Chance(0));
    EXPECT_TRUE(rng.Chance(1000));
  }
}

TEST(VirtualClockTest, AdvanceAndAdvanceTo) {
  VirtualClock clock;
  EXPECT_EQ(clock.Now(), 0u);
  clock.Advance(100);
  EXPECT_EQ(clock.Now(), 100u);
  clock.AdvanceTo(50);  // Never backwards.
  EXPECT_EQ(clock.Now(), 100u);
  clock.AdvanceTo(500);
  EXPECT_EQ(clock.Now(), 500u);
}

TEST(EventQueueTest, RunsInDeadlineOrder) {
  VirtualClock clock;
  EventQueue events;
  std::vector<int> order;
  events.Post(300, [&] { order.push_back(3); });
  events.Post(100, [&] { order.push_back(1); });
  events.Post(200, [&] { order.push_back(2); });
  while (!events.Empty()) {
    events.RunNext(clock);
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(clock.Now(), 300u);
}

TEST(EventQueueTest, SameDeadlineRunsInPostOrder) {
  VirtualClock clock;
  EventQueue events;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    events.Post(42, [&order, i] { order.push_back(i); });
  }
  while (!events.Empty()) {
    events.RunNext(clock);
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, EventsMayPostEvents) {
  VirtualClock clock;
  EventQueue events;
  int fired = 0;
  events.Post(10, [&] {
    ++fired;
    events.Post(20, [&] { ++fired; });
  });
  events.RunNext(clock);
  ASSERT_FALSE(events.Empty());
  events.RunNext(clock);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(clock.Now(), 20u);
}

TEST(KernReturnTest, NamesAreDistinctAndStable) {
  EXPECT_STREQ(KernReturnName(KernReturn::kSuccess), "KERN_SUCCESS");
  EXPECT_STREQ(KernReturnName(KernReturn::kRcvTimedOut), "MACH_RCV_TIMED_OUT");
  EXPECT_STREQ(KernReturnName(KernReturn::kSendInvalidDest), "MACH_SEND_INVALID_DEST");
  EXPECT_TRUE(IsSuccess(KernReturn::kSuccess));
  EXPECT_FALSE(IsSuccess(KernReturn::kFailure));
}

TEST(CostModelTest, AccumulatesPerOp) {
  CostModel model;
  model.Account(CostOp::kStackHandoff, 3, 4);
  model.Account(CostOp::kStackHandoff, 3, 4);
  model.Account(CostOp::kContextSwitch, 30, 30);
  EXPECT_EQ(model.Get(CostOp::kStackHandoff).calls, 2u);
  EXPECT_EQ(model.Get(CostOp::kStackHandoff).word_loads, 6u);
  EXPECT_EQ(model.Get(CostOp::kContextSwitch).word_stores, 30u);
  model.Reset();
  EXPECT_EQ(model.Get(CostOp::kStackHandoff).calls, 0u);
}

TEST(CostModelTest, OpNamesExist) {
  for (int i = 0; i < static_cast<int>(CostOp::kCount); ++i) {
    EXPECT_STRNE(CostOpName(static_cast<CostOp>(i)), "unknown");
  }
}

TEST(CycleModelTest, ConversionMatchesSimulatedClock) {
  // 16.67 cycles take one microsecond on the simulated DS3100.
  EXPECT_NEAR(CyclesToMicros(1667), 100.0, 0.1);
  // Table 4's primitives keep their relative order.
  EXPECT_LT(kCycStackHandoff, kCycContextSwitchNoSave);
  EXPECT_LT(kCycContextSwitchNoSave, kCycContextSwitch);
  EXPECT_LT(kCycSyscallExitMk32, kCycSyscallExitMk40);
}

}  // namespace
}  // namespace mkc
