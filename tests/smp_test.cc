// Multi-processor simulation tests: determinism of the interleave, work
// stealing correctness, thread placement, and the §3.4 stack invariant
// extended to N CPUs.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "src/ipc/ipc_space.h"
#include "src/kern/kernel.h"
#include "src/kern/processor.h"
#include "src/task/task.h"
#include "src/task/usermode.h"
#include "src/workload/workload.h"

namespace mkc {
namespace {

void CaptureMetricsJson(Kernel& kernel, void* arg) {
  *static_cast<std::string*>(arg) = kernel.metrics().DumpJsonString();
}

// --- Determinism ------------------------------------------------------------

TEST(SmpDeterminismTest, FourCpuRunIsByteIdenticalAcrossRuns) {
  KernelConfig config;
  config.ncpu = 4;
  WorkloadParams params;
  params.scale = 1;
  params.seed = 4242;
  params.post_run = &CaptureMetricsJson;

  std::string first;
  std::string second;
  params.post_run_arg = &first;
  RunServerFarmWorkload(config, params);
  params.post_run_arg = &second;
  RunServerFarmWorkload(config, params);

  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);

  // The per-CPU counters must actually be in the dump (ncpu > 1 registers
  // them), and a 1-CPU run of the same workload must not have them.
  EXPECT_NE(first.find("cpu0.sched.local_dequeues"), std::string::npos);
  std::string single;
  config.ncpu = 1;
  params.post_run_arg = &single;
  RunServerFarmWorkload(config, params);
  EXPECT_EQ(single.find("cpu0.sched.local_dequeues"), std::string::npos);
}

TEST(SmpDeterminismTest, ExplicitSingleCpuMatchesDefaultConfig) {
  // ncpu = 1 must be the exact uniprocessor kernel: same metrics, byte for
  // byte, as a config that never mentions ncpu.
  WorkloadParams params;
  params.scale = 1;
  params.seed = 7;
  params.post_run = &CaptureMetricsJson;

  std::string implicit;
  std::string explicit_one;
  KernelConfig config;
  params.post_run_arg = &implicit;
  RunCompileWorkload(config, params);
  config.ncpu = 1;
  params.post_run_arg = &explicit_one;
  RunCompileWorkload(config, params);
  ASSERT_FALSE(implicit.empty());
  EXPECT_EQ(implicit, explicit_one);
}

// --- Work stealing ----------------------------------------------------------

struct StealEnv {
  int runs[8] = {};  // Per-worker completion count: exactly 1 when correct.
};

StealEnv* g_steal_env = nullptr;

void PinnedWorker(void* arg) {
  auto idx = reinterpret_cast<std::uintptr_t>(arg);
  for (int i = 0; i < 30; ++i) {
    UserWork(1000);
  }
  ++g_steal_env->runs[idx];
}

TEST(SmpStealTest, PiledUpThreadsAreStolenNotLostNotDuplicated) {
  KernelConfig config;
  config.ncpu = 4;
  config.cpu_slice = 2000;  // Frequent interleave so idle CPUs get to steal.
  Kernel kernel(config);
  Task* task = kernel.CreateTask("pile");

  static StealEnv env;
  env = StealEnv{};
  g_steal_env = &env;

  // All eight workers pinned to CPU 0: CPUs 1-3 boot idle and can only get
  // work by stealing it.
  for (std::uintptr_t i = 0; i < 8; ++i) {
    ThreadOptions opts;
    opts.home_cpu = 0;
    kernel.CreateUserThread(task, &PinnedWorker, reinterpret_cast<void*>(i), opts);
  }
  kernel.Run();

  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(env.runs[i], 1) << "worker " << i << " ran " << env.runs[i] << " times";
  }
  // The initially idle CPUs can only have run anything by stealing it.
  std::uint64_t remote_steals = 0;
  for (int i = 1; i < kernel.ncpu(); ++i) {
    remote_steals += kernel.cpu(i).steals;
  }
  EXPECT_GT(remote_steals, 0u);
}

TEST(SmpStealTest, HomeCpuPinsFirstPlacement) {
  KernelConfig config;
  config.ncpu = 4;
  Kernel kernel(config);
  Task* task = kernel.CreateTask("pin");
  ThreadOptions opts;
  opts.home_cpu = 2;
  Thread* t = kernel.CreateUserThread(
      task, [](void*) { UserWork(100); }, nullptr, opts);
  EXPECT_EQ(t->last_cpu, 2);
  EXPECT_EQ(t->runq_cpu, 2);
  kernel.Run();
}

// --- The §3.4 invariant on N CPUs -------------------------------------------

struct InvariantEnv {
  std::uint64_t checks = 0;
  std::uint64_t violations = 0;
  int done = 0;
};

InvariantEnv* g_inv_env = nullptr;

// At a user-mode safe point every suspended flow of control has its stack
// attached, so the pool's in-use count must equal the number of threads
// holding a stack, and the number of running threads can't exceed ncpu.
void CheckStackInvariant() {
  Kernel& k = ActiveKernel();
  std::uint64_t attached = 0;
  std::uint64_t running = 0;
  for (const auto& t : k.threads()) {
    if (t->kernel_stack != nullptr) {
      ++attached;
    }
    if (t->state == ThreadState::kRunning) {
      ++running;
    }
  }
  ++g_inv_env->checks;
  if (k.stack_pool().stats().in_use != attached ||
      running > static_cast<std::uint64_t>(k.ncpu())) {
    ++g_inv_env->violations;
  }
}

void InvariantClient(void* arg) {
  auto port = static_cast<PortId*>(arg)[0];
  auto reply = static_cast<PortId*>(arg)[1];
  UserMessage msg;
  for (int i = 0; i < 25; ++i) {
    msg.header.dest = port;
    UserRpc(&msg, 32, reply);
    UserWork(1200);
    CheckStackInvariant();
  }
  ++g_inv_env->done;
}

void InvariantServer(void* arg) {
  auto port = static_cast<PortId*>(arg)[0];
  UserMessage msg;
  if (UserServeOnce(&msg, 0, port) != KernReturn::kSuccess) {
    return;
  }
  for (;;) {
    msg.header.dest = msg.header.reply;
    if (UserServeOnce(&msg, 32, port) != KernReturn::kSuccess) {
      return;
    }
  }
}

class SmpInvariantTest : public testing::TestWithParam<int> {};

TEST_P(SmpInvariantTest, StackCountMatchesAttachedStacksOnEveryCpuCount) {
  KernelConfig config;
  config.ncpu = GetParam();
  config.cpu_slice = 1500;
  Kernel kernel(config);
  Task* clients = kernel.CreateTask("clients");
  Task* servers = kernel.CreateTask("servers");

  static InvariantEnv env;
  env = InvariantEnv{};
  g_inv_env = &env;

  static PortId ports[4][2];
  ThreadOptions daemon;
  daemon.daemon = true;
  for (int i = 0; i < 4; ++i) {
    ports[i][0] = kernel.ipc().AllocatePort(servers);
    ports[i][1] = kernel.ipc().AllocatePort(clients);
    kernel.CreateUserThread(servers, &InvariantServer, ports[i], daemon);
  }
  for (int i = 0; i < 4; ++i) {
    kernel.CreateUserThread(clients, &InvariantClient, ports[i]);
  }
  kernel.Run();

  EXPECT_EQ(env.done, 4);
  EXPECT_GT(env.checks, 0u);
  EXPECT_EQ(env.violations, 0u);
  // Everything wound down: only the reaper's permanent stack remains.
  EXPECT_LE(kernel.stack_pool().stats().in_use, 2u);
}

INSTANTIATE_TEST_SUITE_P(CpuCounts, SmpInvariantTest, testing::Values(1, 2, 4, 8),
                         [](const testing::TestParamInfo<int>& info) {
                           return "cpus" + std::to_string(info.param);
                         });

// --- Per-CPU stack caches ---------------------------------------------------

TEST(SmpStackCacheTest, PerCpuCachesServeRepeatTraffic) {
  // With handoff disabled every RPC block frees a stack and every resume
  // allocates one; on a multi-CPU machine that traffic must be absorbed by
  // the per-CPU caches after they warm up.
  KernelConfig config;
  config.ncpu = 4;
  config.enable_handoff = false;
  WorkloadParams params;
  params.scale = 2;

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t pool_in_use_at_end = 0;
  };
  static Stats stats;
  stats = Stats{};
  params.post_run = [](Kernel& k, void*) {
    for (int i = 0; i < k.ncpu(); ++i) {
      stats.hits += k.cpu(i).stack_cache_hits;
      stats.misses += k.cpu(i).stack_cache_misses;
    }
    stats.pool_in_use_at_end = k.stack_pool().stats().in_use;
  };
  RunServerFarmWorkload(config, params);

  EXPECT_GT(stats.hits, 0u);
  // Hit rate well above 90%: misses only while the caches warm up.
  EXPECT_GT(stats.hits, 9 * stats.misses);
}

}  // namespace
}  // namespace mkc
