// Tests for the §4 extensions: LRPC-style user-continuation override,
// upcalls, asynchronous I/O.
#include <gtest/gtest.h>

#include <cstring>

#include "src/ext/async_io.h"
#include "src/ext/ext_state.h"
#include "src/ipc/ipc_space.h"
#include "src/ipc/mach_msg.h"
#include "src/kern/kernel.h"
#include "src/task/task.h"
#include "src/task/usermode.h"

namespace mkc {
namespace {

// --- LRPC-style override ----------------------------------------------------

struct LrpcState {
  int entries = 0;
  int syscalls_to_make = 0;
  std::uint64_t last_status = 0;
};

LrpcState* g_lrpc = nullptr;

void OverrideTarget(std::uint64_t status) {
  auto* st = g_lrpc;
  st->last_status = status;
  ++st->entries;
  if (st->entries < st->syscalls_to_make) {
    UserNullSyscall();  // Returns HERE again, on a fresh stack.
  }
  // Clear the override, then leave: the exit syscall itself must not jump
  // back into us.
  UserSetUserContinuation(nullptr);
  UserThreadExit();
}

void LrpcThread(void* /*arg*/) {
  UserSetUserContinuation(&OverrideTarget);
  // Unreachable: the set call's own return goes to OverrideTarget.
  ADD_FAILURE() << "override did not take effect";
}

TEST(UserContinuationOverrideTest, SyscallReturnsEnterOverride) {
  KernelConfig config;
  Kernel kernel(config);
  Task* task = kernel.CreateTask("t");
  LrpcState st;
  st.syscalls_to_make = 5;
  g_lrpc = &st;
  kernel.CreateUserThread(task, &LrpcThread, nullptr);
  kernel.Run();
  EXPECT_EQ(st.entries, 5);
  EXPECT_EQ(static_cast<KernReturn>(static_cast<std::uint32_t>(st.last_status)),
            KernReturn::kSuccess);
}

// --- Upcalls -----------------------------------------------------------------

struct UpcallState {
  int delivered = 0;
  std::uint64_t sum = 0;
  int events = 0;
};

UpcallState* g_upcall = nullptr;

void UpcallHandler(std::uint64_t payload) {
  ++g_upcall->delivered;
  g_upcall->sum += payload;
  UserUpcallPark(&UpcallHandler);
  UserThreadExit();
}

void ParkOnly(void* /*arg*/) { UserUpcallPark(&UpcallHandler); }

void UpcallDriver(void* /*arg*/) {
  for (int i = 1; i <= g_upcall->events; ++i) {
    EXPECT_TRUE(UserUpcallTrigger(static_cast<std::uint64_t>(i)));
    UserYield();
  }
}

class UpcallModelTest : public testing::TestWithParam<ControlTransferModel> {};

TEST_P(UpcallModelTest, TriggersDispatchParkedThreads) {
  KernelConfig config;
  config.model = GetParam();
  Kernel kernel(config);
  Task* task = kernel.CreateTask("t");
  UpcallState st;
  st.events = 50;
  g_upcall = &st;
  ThreadOptions daemon;
  daemon.daemon = true;
  kernel.CreateUserThread(task, &ParkOnly, nullptr, daemon);
  kernel.CreateUserThread(task, &UpcallDriver, nullptr);
  kernel.Run();
  EXPECT_EQ(st.delivered, 50);
  EXPECT_EQ(st.sum, 50ull * 51 / 2);
  EXPECT_EQ(kernel.ext().upcalls.ParkedCount(), 1u);
}

TEST_P(UpcallModelTest, TriggerOnEmptyPoolFails) {
  KernelConfig config;
  config.model = GetParam();
  Kernel kernel(config);
  Task* task = kernel.CreateTask("t");
  static bool delivered;
  delivered = true;
  kernel.CreateUserThread(
      task, [](void*) { delivered = UserUpcallTrigger(7); }, nullptr);
  kernel.Run();
  EXPECT_FALSE(delivered);
}

INSTANTIATE_TEST_SUITE_P(AllModels, UpcallModelTest,
                         testing::Values(ControlTransferModel::kMach25,
                                         ControlTransferModel::kMK32,
                                         ControlTransferModel::kMK40),
                         [](const testing::TestParamInfo<ControlTransferModel>& info) {
                           switch (info.param) {
                             case ControlTransferModel::kMach25:
                               return "Mach25";
                             case ControlTransferModel::kMK32:
                               return "MK32";
                             case ControlTransferModel::kMK40:
                               return "MK40";
                           }
                           return "unknown";
                         });

// --- Asynchronous I/O --------------------------------------------------------

struct AioState {
  PortId port = kInvalidPort;
  int requests = 0;
  int completions = 0;
  std::uint64_t id_sum = 0;
};

void AioThread(void* arg) {
  auto* st = static_cast<AioState*>(arg);
  for (int i = 1; i <= st->requests; ++i) {
    ASSERT_EQ(UserAsyncIoStart(st->port, static_cast<std::uint32_t>(i), 500),
              KernReturn::kSuccess);
  }
  UserMessage msg;
  for (int i = 0; i < st->requests; ++i) {
    ASSERT_EQ(UserMachMsg(&msg, kMsgRcvOpt, 0, kMaxInlineBytes, st->port),
              KernReturn::kSuccess);
    ASSERT_EQ(msg.header.msg_id, kAsyncIoDoneMsgId);
    AsyncIoDoneBody body;
    std::memcpy(&body, msg.body, sizeof(body));
    st->id_sum += body.request_id;
    ++st->completions;
  }
}

TEST(AsyncIoTest, AllCompletionsArrive) {
  KernelConfig config;
  Kernel kernel(config);
  Task* task = kernel.CreateTask("t");
  AioState st;
  st.port = kernel.ipc().AllocatePort(task);
  st.requests = 32;
  kernel.CreateUserThread(task, &AioThread, &st);
  kernel.Run();
  EXPECT_EQ(st.completions, 32);
  EXPECT_EQ(st.id_sum, 32ull * 33 / 2);
  const auto& aio = GetAsyncIoStats(kernel);
  EXPECT_EQ(aio.started, 32u);
  EXPECT_EQ(aio.completed, 32u);
  EXPECT_EQ(aio.notify_dropped, 0u);
}

TEST(AsyncIoTest, InvalidPortRejected) {
  KernelConfig config;
  Kernel kernel(config);
  Task* task = kernel.CreateTask("t");
  static KernReturn kr;
  kernel.CreateUserThread(
      task, [](void*) { kr = UserAsyncIoStart(kInvalidPort, 1, 10); }, nullptr);
  kernel.Run();
  EXPECT_EQ(kr, KernReturn::kInvalidArgument);
}

}  // namespace
}  // namespace mkc
