// Cross-model workload comparison: the paper's three workloads executed on
// all three kernels. Not a numbered table in the paper, but the series
// behind its narrative — showing where continuations pay on realistic
// blocking mixes (simulated elapsed time, kernel machine cycles, stacks).
#include <cstdio>

#include "bench/bench_util.h"
#include "src/machine/cycle_model.h"
#include "src/workload/workload.h"

namespace mkc {
namespace {

int Main(int argc, char** argv) {
  int scale = ScaleFromArgs(argc, argv, 5);
  WorkloadParams params;
  params.scale = scale;

  constexpr ControlTransferModel kModels[] = {
      ControlTransferModel::kMK40,
      ControlTransferModel::kMK32,
      ControlTransferModel::kMach25,
  };

  std::printf("Workloads x kernel models (scale %d)\n", scale);
  std::printf("Simulated elapsed = virtual ticks at %.2f MHz; stacks = avg in use\n\n",
              kSimulatedMhz);

  BenchJsonBuilder json("workload_models");
  json.Config("scale", scale);
  for (const auto& entry : kTableWorkloads) {
    std::printf("%s\n", entry.name);
    std::printf("  %-10s %14s %14s %12s %10s %12s\n", "model", "elapsed(ms)", "blocks",
                "handoffs", "stacks", "wall(ms)");
    double mk40_elapsed = 0.0;
    std::string models_json = "{";
    for (ControlTransferModel model : kModels) {
      KernelConfig config;
      config.model = model;
      WorkloadReport r = entry.fn(config, params);
      double elapsed_ms = CyclesToMicros(r.virtual_time) / 1000.0;
      if (model == ControlTransferModel::kMK40) {
        mk40_elapsed = elapsed_ms;
      }
      std::printf("  %-10s %11.2f ms %14llu %12llu %10.2f %9.2f ms", ModelName(model),
                  elapsed_ms, static_cast<unsigned long long>(r.transfer.total_blocks),
                  static_cast<unsigned long long>(r.transfer.stack_handoffs),
                  r.stacks.AverageInUse(), r.wall_seconds * 1000.0);
      if (model != ControlTransferModel::kMK40 && mk40_elapsed > 0.0) {
        std::printf("   (%.2fx vs MK40)", elapsed_ms / mk40_elapsed);
      }
      std::printf("\n");
      char buf[192];
      std::snprintf(buf, sizeof(buf),
                    "%s\"%s\":{\"elapsed_ms\":%.4f,\"blocks\":%llu,\"handoffs\":%llu,"
                    "\"avg_stacks\":%.3f}",
                    models_json.size() > 1 ? "," : "", ModelName(model), elapsed_ms,
                    static_cast<unsigned long long>(r.transfer.total_blocks),
                    static_cast<unsigned long long>(r.transfer.stack_handoffs),
                    r.stacks.AverageInUse());
      models_json += buf;
    }
    models_json += "}";
    json.MetricJson(entry.name, models_json);
    std::printf("\n");
  }
  json.Write();
  std::printf("Reading: the kernels run identical workloads; elapsed-time differences\n"
              "are pure control-transfer overhead. The kernel-intensive mixes (heavy\n"
              "IPC/exceptions per unit of computation) show the largest spread.\n");
  return 0;
}

}  // namespace
}  // namespace mkc

int main(int argc, char** argv) { return mkc::Main(argc, argv); }
