// Reproduces Table 3: "RPC and Exception Times" — round-trip latency of a
// null cross-address-space RPC and of user-level exception handling, on all
// three kernel models.
//
// Reports two signals per model:
//   * simulated microseconds from the DS3100-calibrated cycle model
//     (machine/cycle_model.h) — the apples-to-apples comparison with the
//     paper's Table 3, since it prices register traffic, queueing and
//     scheduling at 1991 relative costs; and
//   * host wall nanoseconds, for reference (modern hardware flattens the
//     register-save costs, compressing the ratios).
// The reproduced claim is the SHAPE: MK40 beats MK32 by a modest margin on
// RPC (paper: 14%) and beats both by 2-3x on exceptions.
#include <cstdio>
#include <cstring>

#include "bench/bench_util.h"
#include "src/exc/exception.h"
#include "src/ipc/ipc_space.h"
#include "src/ipc/mach_msg.h"
#include "src/kern/kernel.h"
#include "src/machine/cycle_model.h"
#include "src/task/task.h"
#include "src/task/usermode.h"

namespace mkc {
namespace {

struct Measurement {
  double sim_us = 0.0;  // Simulated microseconds per operation (cycle model).
  double host_ns = 0.0;
};

struct RpcBenchState {
  PortId service_port = kInvalidPort;
  PortId reply_port = kInvalidPort;
  int iterations = 0;
};

void NullRpcServer(void* arg) {
  auto* st = static_cast<RpcBenchState*>(arg);
  UserMessage msg;
  if (UserServeOnce(&msg, 0, st->service_port) != KernReturn::kSuccess) {
    return;
  }
  for (;;) {
    msg.header.dest = msg.header.reply;
    if (UserServeOnce(&msg, 8, st->service_port) != KernReturn::kSuccess) {
      return;
    }
  }
}

void NullRpcClient(void* arg) {
  auto* st = static_cast<RpcBenchState*>(arg);
  UserMessage msg;
  for (int i = 0; i < st->iterations; ++i) {
    msg.header.dest = st->service_port;
    UserRpc(&msg, 8, st->reply_port);
  }
}

// Measures one null-RPC round trip (client in one task, server in another).
Measurement MeasureRpc(ControlTransferModel model, int iterations) {
  KernelConfig config;
  config.model = model;
  Kernel kernel(config);
  Task* client = kernel.CreateTask("client");
  Task* server = kernel.CreateTask("server");
  RpcBenchState st;
  st.service_port = kernel.ipc().AllocatePort(server);
  st.reply_port = kernel.ipc().AllocatePort(client);
  st.iterations = iterations;
  ThreadOptions daemon;
  daemon.daemon = true;
  kernel.CreateUserThread(server, &NullRpcServer, &st, daemon);
  kernel.CreateUserThread(client, &NullRpcClient, &st);
  WallTimer timer;
  Ticks t0 = kernel.clock().Now();
  kernel.Run();
  Measurement m;
  m.host_ns = timer.Seconds() * 1e9 / iterations;
  m.sim_us = CyclesToMicros(kernel.clock().Now() - t0) / iterations;
  return m;
}

struct ExcBenchState {
  PortId exc_port = kInvalidPort;
  int iterations = 0;
};

void ExcBenchServer(void* arg) {
  auto* st = static_cast<ExcBenchState*>(arg);
  UserMessage msg;
  if (UserServeOnce(&msg, 0, st->exc_port) != KernReturn::kSuccess) {
    return;
  }
  for (;;) {
    // "it does not examine or change the state of the faulting thread"
    ExcRequestBody req;
    std::memcpy(&req, msg.body, sizeof(req));
    ExcReplyBody reply;
    reply.handled = 1;
    msg.header.dest = req.reply_port;
    msg.header.msg_id = kExcReplyMsgId;
    std::memcpy(msg.body, &reply, sizeof(reply));
    if (UserServeOnce(&msg, sizeof(reply), st->exc_port) != KernReturn::kSuccess) {
      return;
    }
  }
}

void ExcBenchFaulter(void* arg) {
  auto* st = static_cast<ExcBenchState*>(arg);
  UserSetExceptionPort(st->exc_port);
  for (int i = 0; i < st->iterations; ++i) {
    UserRaiseException(kExcSoftware);
  }
}

// Measures one exception round trip (server in the faulting thread's own
// address space, as in the paper's test).
Measurement MeasureException(ControlTransferModel model, int iterations) {
  KernelConfig config;
  config.model = model;
  Kernel kernel(config);
  Task* task = kernel.CreateTask("task");
  ExcBenchState st;
  st.exc_port = kernel.ipc().AllocatePort(task);
  st.iterations = iterations;
  ThreadOptions daemon;
  daemon.daemon = true;
  kernel.CreateUserThread(task, &ExcBenchServer, &st, daemon);
  kernel.CreateUserThread(task, &ExcBenchFaulter, &st);
  WallTimer timer;
  Ticks t0 = kernel.clock().Now();
  kernel.Run();
  Measurement m;
  m.host_ns = timer.Seconds() * 1e9 / iterations;
  m.sim_us = CyclesToMicros(kernel.clock().Now() - t0) / iterations;
  return m;
}

int Main(int argc, char** argv) {
  int iterations = 100000 * ScaleFromArgs(argc, argv, 1);

  constexpr ControlTransferModel kModels[] = {
      ControlTransferModel::kMK40,
      ControlTransferModel::kMK32,
      ControlTransferModel::kMach25,
  };

  Measurement rpc[3];
  Measurement exc[3];
  for (int i = 0; i < 3; ++i) {
    // Warm, then measure.
    MeasureRpc(kModels[i], iterations / 10);
    rpc[i] = MeasureRpc(kModels[i], iterations);
    MeasureException(kModels[i], iterations / 10);
    exc[i] = MeasureException(kModels[i], iterations);
  }

  std::printf("Table 3: RPC and Exception Times (simulated us, DS3100 cycle model)\n");
  std::printf("%d iterations per cell. Paper values measured on a real DS3100.\n\n",
              iterations);
  std::printf("%-12s %9s %9s %9s   | paper(us) %5s %5s %5s\n", "", "MK40", "MK32",
              "Mach2.5", "MK40", "MK32", "M2.5");
  std::printf("%-12s %8.1f %9.1f %9.1f   | %14.0f %5.0f %5.0f\n", "null RPC",
              rpc[0].sim_us, rpc[1].sim_us, rpc[2].sim_us, 95.0, 110.0, 185.0);
  std::printf("%-12s %8.1f %9.1f %9.1f   | %14.0f %5.0f %5.0f\n", "exception",
              exc[0].sim_us, exc[1].sim_us, exc[2].sim_us, 135.0, 425.0, 380.0);

  std::printf("\nShape checks, simulated time (paper in brackets):\n");
  std::printf("  RPC: MK32/MK40 = %.2fx [1.16x], Mach2.5/MK40 = %.2fx [1.95x]\n",
              rpc[1].sim_us / rpc[0].sim_us, rpc[2].sim_us / rpc[0].sim_us);
  std::printf("  exception: MK32/MK40 = %.2fx [3.15x], Mach2.5/MK40 = %.2fx [2.81x]\n",
              exc[1].sim_us / exc[0].sim_us, exc[2].sim_us / exc[0].sim_us);

  std::printf("\nHost wall clock, for reference (modern hardware compresses the\n"
              "register-save costs that dominated the DS3100):\n");
  std::printf("  null RPC : %6.0f / %6.0f / %6.0f ns\n", rpc[0].host_ns, rpc[1].host_ns,
              rpc[2].host_ns);
  std::printf("  exception: %6.0f / %6.0f / %6.0f ns\n", exc[0].host_ns, exc[1].host_ns,
              exc[2].host_ns);

  BenchJsonBuilder json("table3_latency");
  json.Config("iterations", iterations);
  const char* model_names[3] = {"mk40", "mk32", "mach25"};
  for (int i = 0; i < 3; ++i) {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "{\"rpc_sim_us\":%.4f,\"exception_sim_us\":%.4f,"
                  "\"rpc_host_ns\":%.1f,\"exception_host_ns\":%.1f}",
                  rpc[i].sim_us, exc[i].sim_us, rpc[i].host_ns, exc[i].host_ns);
    json.MetricJson(model_names[i], buf);
  }
  json.Write();
  return 0;
}

}  // namespace
}  // namespace mkc

int main(int argc, char** argv) { return mkc::Main(argc, argv); }
