// Overload-control gate: the knee experiment from the service fabric.
//
// Sweeps open-loop offered load across the service fabric's capacity knee,
// once with shedding disabled (the ablation) and once with queue-depth /
// deadline shedding armed. The closed-loop workloads in bench_table*_  can
// never show this curve — their clients self-throttle — so this bench is
// where the overload-control claim is actually measured:
//
//   * Without shedding, goodput (completions within deadline) collapses
//     past the knee even though raw throughput stays at capacity: every
//     admitted request waits behind an unbounded backlog until its
//     deadline is ancient history, and p99.9 grows with the run length.
//
//   * With shedding armed, stale requests are dropped at the client margin
//     and at the server, so the work that *is* done lands inside its
//     deadline: goodput stays near the knee rate and p99.9 stays bounded.
//
// The sweep, both curves, and the derived knee metrics go into the unified
// bench JSON for tools/check_perf_regression.py --openloop, which holds the
// shed arm to >= 90% of knee goodput and the ablation to its collapse.
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "src/kern/kernel.h"
#include "src/svc/service.h"
#include "src/workload/openloop.h"

namespace mkc {
namespace {

constexpr std::uint64_t kSeed = 42;
constexpr Ticks kDeadline = 60000;
constexpr std::uint32_t kShedDepth = 8;

// Offered rates (arrivals per Mtick). The single-CPU fabric's capacity on
// the default 4/4/4 shard mix sits near 600/Mtick, so the sweep brackets
// the knee with points at roughly 2x past it.
constexpr std::uint64_t kRates[] = {200, 300, 400, 600, 800, 1200, 1600, 2400};
constexpr int kNumRates = static_cast<int>(sizeof(kRates) / sizeof(kRates[0]));

struct ArmResult {
  std::uint64_t rate = 0;
  std::uint64_t arrivals = 0;
  std::uint64_t goodput = 0;       // Completions within deadline.
  std::uint64_t shed = 0;
  Ticks p999 = 0;                  // Worst per-kind cumulative p99.9.
  Ticks vtime = 0;
  double goodput_rate = 0.0;       // Goodput per Mtick of virtual time.
};

ArmResult RunArm(std::uint64_t rate, std::uint32_t shed_depth, int scale) {
  KernelConfig config;
  config.seed = kSeed;
  Kernel kernel(config);

  OpenLoopParams op;
  op.rate = rate;
  op.seed = kSeed;
  op.deadline = kDeadline;
  op.shed_depth = shed_depth;
  op.total_arrivals = static_cast<std::uint64_t>(250) * scale;
  OpenLoopEngine engine(kernel, op);
  kernel.Run();
  OpenLoopReport rep = engine.Finish();

  ArmResult r;
  r.rate = rate;
  r.arrivals = rep.arrivals_total;
  r.goodput = rep.deadline_met_total;
  r.shed = rep.shed_total;
  r.vtime = rep.virtual_time;
  for (int k = 0; k < kServiceKindCount; ++k) {
    if (rep.latency[k].p999 > r.p999) {
      r.p999 = rep.latency[k].p999;
    }
  }
  r.goodput_rate = r.vtime > 0 ? 1e6 * static_cast<double>(r.goodput) /
                                     static_cast<double>(r.vtime)
                               : 0.0;
  return r;
}

std::string CurveJson(const ArmResult* arms, int n) {
  std::string out = "[";
  for (int i = 0; i < n; ++i) {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"rate\":%llu,\"arrivals\":%llu,\"goodput\":%llu,"
                  "\"shed\":%llu,\"p999\":%llu,\"vtime\":%llu,"
                  "\"goodput_rate\":%.1f}",
                  i > 0 ? "," : "",
                  static_cast<unsigned long long>(arms[i].rate),
                  static_cast<unsigned long long>(arms[i].arrivals),
                  static_cast<unsigned long long>(arms[i].goodput),
                  static_cast<unsigned long long>(arms[i].shed),
                  static_cast<unsigned long long>(arms[i].p999),
                  static_cast<unsigned long long>(arms[i].vtime), arms[i].goodput_rate);
    out += buf;
  }
  out += "]";
  return out;
}

int Main(int argc, char** argv) {
  int scale = ScaleFromArgs(argc, argv, 2);

  ArmResult noshed[kNumRates];
  ArmResult shed[kNumRates];
  for (int i = 0; i < kNumRates; ++i) {
    noshed[i] = RunArm(kRates[i], /*shed_depth=*/0, scale);
    shed[i] = RunArm(kRates[i], kShedDepth, scale);
  }

  // The knee: the highest swept rate the unshedded fabric still serves with
  // >= 90% of arrivals inside their deadline.
  int knee = 0;
  for (int i = 0; i < kNumRates; ++i) {
    if (noshed[i].goodput * 10 >= noshed[i].arrivals * 9) {
      knee = i;
    }
  }
  // The overload point: the first swept rate at >= 2x the knee rate (the
  // last point if the sweep tops out earlier).
  int over = kNumRates - 1;
  for (int i = knee; i < kNumRates; ++i) {
    if (kRates[i] >= 2 * kRates[knee]) {
      over = i;
      break;
    }
  }

  const double knee_rate = noshed[knee].goodput_rate;
  const double noshed_over_ratio =
      noshed[over].arrivals > 0
          ? static_cast<double>(noshed[over].goodput) /
                static_cast<double>(noshed[over].arrivals)
          : 0.0;
  const double shed_vs_knee =
      knee_rate > 0.0 ? shed[over].goodput_rate / knee_rate : 0.0;

  std::printf("open-loop overload sweep: scale %d, seed %llu, deadline %llu, "
              "shed depth %u\n\n",
              scale, static_cast<unsigned long long>(kSeed),
              static_cast<unsigned long long>(kDeadline), kShedDepth);
  std::printf("%8s | %22s | %22s\n", "", "no shedding", "shedding armed");
  std::printf("%8s | %8s %6s %6s | %8s %6s %6s\n", "rate", "goodput", "g/Mt",
              "p99.9k", "goodput", "g/Mt", "p99.9k");
  for (int i = 0; i < kNumRates; ++i) {
    std::printf("%8llu | %4llu/%-4llu %6.0f %5lluk | %4llu/%-4llu %6.0f %5lluk%s\n",
                static_cast<unsigned long long>(kRates[i]),
                static_cast<unsigned long long>(noshed[i].goodput),
                static_cast<unsigned long long>(noshed[i].arrivals),
                noshed[i].goodput_rate,
                static_cast<unsigned long long>(noshed[i].p999 / 1000),
                static_cast<unsigned long long>(shed[i].goodput),
                static_cast<unsigned long long>(shed[i].arrivals),
                shed[i].goodput_rate,
                static_cast<unsigned long long>(shed[i].p999 / 1000),
                i == knee ? "   <- knee" : (i == over ? "   <- 2x knee" : ""));
  }
  std::printf("\nknee %llu/Mtick (goodput rate %.0f); at %llu/Mtick unshedded "
              "goodput falls to %.0f%% with p99.9 %.1fx the deadline, shedding "
              "holds %.0f%% of knee goodput with p99.9 %.1fx\n",
              static_cast<unsigned long long>(kRates[knee]), knee_rate,
              static_cast<unsigned long long>(kRates[over]),
              100.0 * noshed_over_ratio,
              static_cast<double>(noshed[over].p999) / kDeadline,
              100.0 * shed_vs_knee,
              static_cast<double>(shed[over].p999) / kDeadline);

  BenchJsonBuilder("openloop")
      .Config("scale", scale)
      .Config("seed", static_cast<unsigned long long>(kSeed))
      .Config("deadline", static_cast<unsigned long long>(kDeadline))
      .Config("shed_depth", static_cast<unsigned long long>(kShedDepth))
      .MetricJson("noshed_curve", CurveJson(noshed, kNumRates))
      .MetricJson("shed_curve", CurveJson(shed, kNumRates))
      .Metric("knee_rate", static_cast<unsigned long long>(kRates[knee]))
      .Metric("knee_goodput_rate", knee_rate)
      .Metric("overload_rate", static_cast<unsigned long long>(kRates[over]))
      .Metric("noshed_overload_goodput_ratio", noshed_over_ratio)
      .Metric("noshed_overload_p999",
              static_cast<unsigned long long>(noshed[over].p999))
      .Metric("shed_overload_goodput_rate", shed[over].goodput_rate)
      .Metric("shed_overload_p999", static_cast<unsigned long long>(shed[over].p999))
      .Metric("shed_vs_knee_ratio", shed_vs_knee)
      .Write();
  return 0;
}

}  // namespace
}  // namespace mkc

int main(int argc, char** argv) { return mkc::Main(argc, argv); }
