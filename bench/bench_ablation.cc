// Ablations of the design choices DESIGN.md calls out:
//
//   1. What each MK40 optimization buys on the null-RPC path: stack handoff
//      and continuation recognition disabled independently, against the MK32
//      and Mach 2.5 baselines.
//   2. The stack cache: how the free-stack cache size affects host
//      allocations and latency (Mach kept a cache for the same reason).
//   3. The kmsg magazines: per-CPU magazine depth against the modeled
//      allocation cycles on the queueing (Mach 2.5) RPC path, where every
//      round trip materializes a kmsg.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/ipc/ipc_space.h"
#include "src/kern/kernel.h"
#include "src/machine/cycle_model.h"
#include "src/task/task.h"
#include "src/task/usermode.h"

namespace mkc {
namespace {

struct RpcState {
  PortId service_port = kInvalidPort;
  PortId reply_port = kInvalidPort;
  int iterations = 0;
};

void Server(void* arg) {
  auto* st = static_cast<RpcState*>(arg);
  UserMessage msg;
  if (UserServeOnce(&msg, 0, st->service_port) != KernReturn::kSuccess) {
    return;
  }
  for (;;) {
    msg.header.dest = msg.header.reply;
    if (UserServeOnce(&msg, 8, st->service_port) != KernReturn::kSuccess) {
      return;
    }
  }
}

void Client(void* arg) {
  auto* st = static_cast<RpcState*>(arg);
  UserMessage msg;
  for (int i = 0; i < st->iterations; ++i) {
    msg.header.dest = st->service_port;
    UserRpc(&msg, 8, st->reply_port);
  }
}

struct AblationResult {
  double sim_us_per_rpc = 0.0;
  double ns_per_rpc = 0.0;
  std::uint64_t handoffs = 0;
  std::uint64_t recognitions = 0;
  std::uint64_t stack_allocs = 0;
  std::uint64_t stacks_created = 0;
  std::uint64_t kmsg_allocs = 0;
  std::uint64_t kmsg_magazine_hits = 0;
  std::uint64_t kmsg_refills = 0;
  std::uint64_t kmsg_alloc_cycles = 0;
};

AblationResult RunRpc(const KernelConfig& config, int iterations) {
  Kernel kernel(config);
  Task* client_task = kernel.CreateTask("client");
  Task* server_task = kernel.CreateTask("server");
  RpcState st;
  st.service_port = kernel.ipc().AllocatePort(server_task);
  st.reply_port = kernel.ipc().AllocatePort(client_task);
  st.iterations = iterations;
  ThreadOptions daemon;
  daemon.daemon = true;
  kernel.CreateUserThread(server_task, &Server, &st, daemon);
  kernel.CreateUserThread(client_task, &Client, &st);
  kernel.ResetStats();
  WallTimer timer;
  Ticks t0 = kernel.clock().Now();
  kernel.Run();
  AblationResult result;
  result.sim_us_per_rpc = CyclesToMicros(kernel.clock().Now() - t0) / iterations;
  result.ns_per_rpc = timer.Seconds() * 1e9 / iterations;
  result.handoffs = kernel.transfer_stats().stack_handoffs;
  result.recognitions = kernel.transfer_stats().recognitions;
  result.stack_allocs = kernel.stack_pool().stats().allocs;
  result.stacks_created = kernel.stack_pool().stats().created;
  for (const Zone* zone : {&kernel.ipc().kmsg_small_zone(), &kernel.ipc().kmsg_full_zone()}) {
    const ZoneStats& zs = zone->stats();
    result.kmsg_allocs += zs.allocs;
    result.kmsg_magazine_hits += zs.magazine_hits;
    result.kmsg_refills += zs.refills;
    result.kmsg_alloc_cycles += zs.alloc_cycles;
  }
  return result;
}

int Main(int argc, char** argv) {
  int iterations = 100000 * ScaleFromArgs(argc, argv, 1);

  struct Variant {
    const char* name;
    KernelConfig config;
  };
  Variant variants[5];
  variants[0].name = "MK40 (full)";
  variants[1].name = "MK40 -recognition";
  variants[1].config.enable_recognition = false;
  variants[2].name = "MK40 -handoff";
  variants[2].config.enable_handoff = false;
  variants[3].name = "MK32";
  variants[3].config.model = ControlTransferModel::kMK32;
  variants[4].name = "Mach 2.5";
  variants[4].config.model = ControlTransferModel::kMach25;

  RunRpc(variants[0].config, iterations / 10);  // Warm.

  std::printf("Ablation 1: null RPC with MK40's optimizations removed one at a time\n\n");
  std::printf("%-20s %10s %9s %10s %12s %12s\n", "variant", "sim us/RPC", "vs full",
              "host ns", "handoffs", "recognitions");
  double baseline = 0.0;
  std::string variant_json = "[";
  for (const auto& v : variants) {
    AblationResult r = RunRpc(v.config, iterations);
    if (baseline == 0.0) {
      baseline = r.sim_us_per_rpc;
    }
    std::printf("%-20s %10.1f %8.2fx %10.0f %12llu %12llu\n", v.name, r.sim_us_per_rpc,
                r.sim_us_per_rpc / baseline, r.ns_per_rpc,
                static_cast<unsigned long long>(r.handoffs),
                static_cast<unsigned long long>(r.recognitions));
    char buf[224];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"variant\":\"%s\",\"sim_us_per_rpc\":%.4f,\"vs_full\":%.4f,"
                  "\"handoffs\":%llu,\"recognitions\":%llu}",
                  variant_json.size() > 1 ? "," : "", v.name, r.sim_us_per_rpc,
                  r.sim_us_per_rpc / baseline,
                  static_cast<unsigned long long>(r.handoffs),
                  static_cast<unsigned long long>(r.recognitions));
    variant_json += buf;
  }
  variant_json += "]";

  std::printf("\nAblation 2: free-stack cache size (MK40 -handoff, the stack-hungry path)\n\n");
  std::printf("%-12s %12s %14s %16s\n", "cache size", "host ns/RPC", "stack allocs",
              "host allocations");
  std::string cache_json = "[";
  for (std::size_t cache : {std::size_t{0}, std::size_t{1}, std::size_t{4}, std::size_t{16}}) {
    KernelConfig config;
    config.enable_handoff = false;  // Forces a stack attach per resumption.
    config.stack_cache_limit = cache;
    AblationResult r = RunRpc(config, iterations / 2);
    std::printf("%-12zu %12.0f %14llu %16llu\n", cache, r.ns_per_rpc,
                static_cast<unsigned long long>(r.stack_allocs),
                static_cast<unsigned long long>(r.stacks_created));
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"cache_size\":%zu,\"stack_allocs\":%llu,\"stacks_created\":%llu}",
                  cache_json.size() > 1 ? "," : "", cache,
                  static_cast<unsigned long long>(r.stack_allocs),
                  static_cast<unsigned long long>(r.stacks_created));
    cache_json += buf;
  }
  cache_json += "]";

  std::printf("\nAblation 3: kmsg magazine depth (Mach 2.5, the queueing path)\n\n");
  std::printf("%-12s %12s %14s %12s %14s\n", "depth", "alloc cyc/op", "magazine hits",
              "refills", "hit rate");
  std::string zone_json = "[";
  for (std::size_t depth : {std::size_t{0}, std::size_t{2}, std::size_t{8}, std::size_t{16}}) {
    KernelConfig config;
    config.model = ControlTransferModel::kMach25;
    config.kmsg_magazine_depth = depth;
    AblationResult r = RunRpc(config, iterations / 2);
    std::uint64_t ops = r.kmsg_allocs * 2;  // Each kmsg is one alloc + one free.
    double cyc_per_op = ops == 0 ? 0.0 : static_cast<double>(r.kmsg_alloc_cycles) / ops;
    double hit_rate = ops == 0 ? 0.0 : 100.0 * r.kmsg_magazine_hits / ops;
    std::printf("%-12zu %12.2f %14llu %12llu %13.1f%%\n", depth, cyc_per_op,
                static_cast<unsigned long long>(r.kmsg_magazine_hits),
                static_cast<unsigned long long>(r.kmsg_refills), hit_rate);
    char buf[224];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"depth\":%zu,\"alloc_cycles_per_op\":%.4f,\"magazine_hits\":%llu,"
                  "\"refills\":%llu,\"hit_rate_pct\":%.2f}",
                  zone_json.size() > 1 ? "," : "", depth, cyc_per_op,
                  static_cast<unsigned long long>(r.kmsg_magazine_hits),
                  static_cast<unsigned long long>(r.kmsg_refills), hit_rate);
    zone_json += buf;
  }
  zone_json += "]";

  BenchJsonBuilder("ablation")
      .Config("iterations", iterations)
      .MetricJson("variants", variant_json)
      .MetricJson("cache_sweep", cache_json)
      .MetricJson("kmsg_zone_sweep", zone_json)
      .Write();
  return 0;
}

}  // namespace
}  // namespace mkc

int main(int argc, char** argv) { return mkc::Main(argc, argv); }
