// Reproduces Table 5: "Thread Management Overhead" — kernel bytes consumed
// per thread under the continuation kernel (MK40) versus the process-model
// kernel (MK32). The paper's headline: continuations cut per-thread kernel
// memory by 85% because the 4 KB stack (plus its VM bookkeeping) stops being
// a per-thread resource.
//
// Two views: the static structure sizes of this implementation, and an
// empirical run that parks N threads in message receives and divides the
// stack bytes actually in use.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/ipc/ipc_space.h"
#include "src/kern/kernel.h"
#include "src/kern/thread.h"
#include "src/machine/md_state.h"
#include "src/task/task.h"
#include "src/task/usermode.h"

namespace mkc {
namespace {

struct ParkState {
  PortId port = kInvalidPort;
  int parked = 0;
  int target = 0;
  std::uint64_t stacks_in_use_when_parked = 0;
  std::uint64_t max_stacks_in_use = 0;  // Pool high-water mark at snapshot.
  std::uint64_t max_stacks_cached = 0;  // Free-cache high-water mark.
  std::uint64_t stack_bytes = 0;
};

void ParkedReceiver(void* arg) {
  auto* st = static_cast<ParkState*>(arg);
  ++st->parked;
  UserMessage msg;
  // Block forever waiting for a message that never comes.
  UserMachMsg(&msg, kMsgRcvOpt, 0, kMaxInlineBytes, st->port);
}

void ParkObserver(void* arg) {
  auto* st = static_cast<ParkState*>(arg);
  // Yield until every receiver has parked, then snapshot the pool.
  while (st->parked < st->target) {
    UserYield();
  }
  Kernel& k = ActiveKernel();
  st->stacks_in_use_when_parked = k.stack_pool().stats().in_use;
  st->max_stacks_in_use = k.stack_pool().stats().max_in_use;
  st->max_stacks_cached = k.stack_pool().stats().max_cached;
  st->stack_bytes = k.stack_pool().stack_bytes();
}

struct ZoneFootprint {
  std::uint64_t small_elem = 0;
  std::uint64_t full_elem = 0;
  std::uint64_t small_footprint = 0;
  std::uint64_t full_footprint = 0;
  std::uint64_t queued = 0;
};

void QueueSender(void* arg) {
  auto* st = static_cast<ParkState*>(arg);
  UserMessage msg;
  msg.header.dest = st->port;
  for (int i = 0; i < st->target; ++i) {
    UserMachMsg(&msg, kMsgSendOpt, 64, 0, kInvalidPort);
  }
}

// Queues 64-byte messages on a port nobody receives from and reads the kmsg
// zones' host footprint: with size-classing each queued message occupies a
// small element instead of a full kMaxInlineBytes one.
ZoneFootprint RunQueuedFootprint(int queued) {
  KernelConfig config;
  config.model = ControlTransferModel::kMach25;  // The queueing path.
  Kernel kernel(config);
  Task* task = kernel.CreateTask("senders");
  static ParkState st;
  st = ParkState{};
  st.port = kernel.ipc().AllocatePort(task);
  st.target = queued;
  kernel.CreateUserThread(task, &QueueSender, &st);
  kernel.Run();
  ZoneFootprint fp;
  fp.queued = static_cast<std::uint64_t>(queued);
  fp.small_elem = kernel.ipc().kmsg_small_zone().elem_size();
  fp.full_elem = kernel.ipc().kmsg_full_zone().elem_size();
  fp.small_footprint = kernel.ipc().kmsg_small_zone().footprint_bytes();
  fp.full_footprint = kernel.ipc().kmsg_full_zone().footprint_bytes();
  return fp;
}

ParkState RunParked(ControlTransferModel model, int threads) {
  KernelConfig config;
  config.model = model;
  config.kernel_stack_bytes = 16 * 1024;  // Keep the MK32 run affordable.
  config.user_stack_bytes = 16 * 1024;
  Kernel kernel(config);
  Task* task = kernel.CreateTask("receivers");
  static ParkState st;
  st = ParkState{};
  st.port = kernel.ipc().AllocatePort(task);
  st.target = threads;
  ThreadOptions daemon;
  daemon.daemon = true;
  for (int i = 0; i < threads; ++i) {
    kernel.CreateUserThread(task, &ParkedReceiver, &st, daemon);
  }
  kernel.CreateUserThread(task, &ParkObserver, &st);
  kernel.Run();
  return st;
}

int Main(int argc, char** argv) {
  int threads = 100 * ScaleFromArgs(argc, argv, 1);

  // --- Static view -------------------------------------------------------
  const std::size_t md_bytes = sizeof(MdThreadState);
  const std::size_t mi_bytes = sizeof(Thread) - md_bytes;
  // The continuation machinery's share of the MI structure (pointer + the
  // 28-byte scratch area), which the paper counts as MK40's MI growth.
  const std::size_t continuation_bytes = sizeof(Continuation) + kScratchBytes;

  std::printf("Table 5: Thread Management Overhead (bytes per thread)\n\n");
  std::printf("Static structure sizes of this implementation:\n");
  std::printf("%-12s %10s %10s      paper: MK40  MK32\n", "", "MK40", "MK32");
  std::printf("%-12s %10zu %10zu      %11u %5u\n", "MI state", mi_bytes,
              mi_bytes - continuation_bytes, 484u, 452u);
  std::printf("%-12s %10zu %10s      %11u %5u  (MK32 keeps MD state on the stack)\n",
              "MD state", md_bytes, "0", 206u, 0u);

  // --- Empirical view ----------------------------------------------------
  ParkState mk40 = RunParked(ControlTransferModel::kMK40, threads);
  ParkState mk32 = RunParked(ControlTransferModel::kMK32, threads);

  const double mk40_stack_per_thread =
      static_cast<double>(mk40.stacks_in_use_when_parked) *
      static_cast<double>(mk40.stack_bytes) / threads;
  const double mk32_stack_per_thread =
      static_cast<double>(mk32.stacks_in_use_when_parked) *
      static_cast<double>(mk32.stack_bytes) / threads;

  std::printf("%-12s %10.0f %10.0f      %11u %5u  (+116 VM bytes in the paper)\n", "stack",
              mk40_stack_per_thread, mk32_stack_per_thread, 0u, 4096u);

  const double mk40_total = static_cast<double>(sizeof(Thread)) + mk40_stack_per_thread;
  const double mk32_total = static_cast<double>(mi_bytes - continuation_bytes) +
                            static_cast<double>(mk32.stack_bytes) + 116.0;
  std::printf("%-12s %10.0f %10.0f      %11u %5u\n", "total", mk40_total, mk32_total, 690u,
              4664u);
  std::printf("\nEmpirical: %d threads blocked in message receive\n", threads);
  std::printf("  MK40: %llu kernel stacks in use (stacks are a per-processor resource)\n",
              static_cast<unsigned long long>(mk40.stacks_in_use_when_parked));
  std::printf("  MK32: %llu kernel stacks in use (one per thread)\n",
              static_cast<unsigned long long>(mk32.stacks_in_use_when_parked));
  std::printf("  high-water marks: MK40 %llu allocated / %llu cached, MK32 %llu allocated\n",
              static_cast<unsigned long long>(mk40.max_stacks_in_use),
              static_cast<unsigned long long>(mk40.max_stacks_cached),
              static_cast<unsigned long long>(mk32.max_stacks_in_use));
  std::printf("  per-thread savings: %.1f%% [paper: 85%%]\n",
              100.0 * (1.0 - mk40_total / mk32_total));

  // --- kmsg zone memory (the §3.4 argument applied to messages) ----------
  ZoneFootprint fp = RunQueuedFootprint(48);
  std::printf("\nkmsg zone memory: size-classed elements (small %llu B, full %llu B)\n",
              static_cast<unsigned long long>(fp.small_elem),
              static_cast<unsigned long long>(fp.full_elem));
  std::printf("  %llu queued 64-byte messages: %llu zone bytes "
              "(full-sized elements would need %llu)\n",
              static_cast<unsigned long long>(fp.queued),
              static_cast<unsigned long long>(fp.small_footprint + fp.full_footprint),
              static_cast<unsigned long long>(fp.queued * fp.full_elem));

  char mk40_json[192];
  std::snprintf(mk40_json, sizeof(mk40_json),
                "{\"stacks_in_use\":%llu,\"max_in_use\":%llu,\"max_cached\":%llu,"
                "\"per_thread_bytes\":%.0f}",
                static_cast<unsigned long long>(mk40.stacks_in_use_when_parked),
                static_cast<unsigned long long>(mk40.max_stacks_in_use),
                static_cast<unsigned long long>(mk40.max_stacks_cached), mk40_total);
  char mk32_json[192];
  std::snprintf(mk32_json, sizeof(mk32_json),
                "{\"stacks_in_use\":%llu,\"max_in_use\":%llu,\"per_thread_bytes\":%.0f}",
                static_cast<unsigned long long>(mk32.stacks_in_use_when_parked),
                static_cast<unsigned long long>(mk32.max_stacks_in_use), mk32_total);
  char zone_row[224];
  std::snprintf(zone_row, sizeof(zone_row),
                "{\"small_elem_bytes\":%llu,\"full_elem_bytes\":%llu,\"queued\":%llu,"
                "\"small_footprint_bytes\":%llu,\"full_footprint_bytes\":%llu}",
                static_cast<unsigned long long>(fp.small_elem),
                static_cast<unsigned long long>(fp.full_elem),
                static_cast<unsigned long long>(fp.queued),
                static_cast<unsigned long long>(fp.small_footprint),
                static_cast<unsigned long long>(fp.full_footprint));
  BenchJsonBuilder("table5_memory")
      .Config("threads", threads)
      .MetricJson("mk40", mk40_json)
      .MetricJson("mk32", mk32_json)
      .MetricJson("kmsg_zones", zone_row)
      .Write();
  return 0;
}

}  // namespace
}  // namespace mkc

int main(int argc, char** argv) { return mkc::Main(argc, argv); }
