// Reproduces Table 1: "Frequency of Stack Discarding with Continuations".
//
// Runs the three synthetic workloads on the MK40 (continuation) kernel and
// reports, per blocking reason, how many blocks discarded the kernel stack —
// next to the percentages the paper measured on the Toshiba 5200.
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "src/obs/metrics.h"
#include "src/workload/workload.h"

namespace mkc {
namespace {

// Post-run hook target: the workload's full metrics registry as JSON.
void CaptureMetricsJson(Kernel& kernel, void* arg) {
  *static_cast<std::string*>(arg) = kernel.metrics().DumpJsonString();
}

struct PaperColumn {
  // Paper Table 1 percentages per workload column.
  double values[3];
};

// Rows of Table 1, in paper order, with the paper's per-column percentages.
struct Row {
  BlockReason reason;
  const char* label;
  PaperColumn paper;
};

constexpr Row kRows[] = {
    {BlockReason::kMessageReceive, "message receive", {{83.4, 86.3, 55.2}}},
    {BlockReason::kException, "exception", {{0.0, 0.0, 37.9}}},
    {BlockReason::kPageFault, "page fault", {{0.9, 0.2, 0.0}}},
    {BlockReason::kThreadSwitch, "thread switch", {{0.0, 0.0, 0.0}}},
    {BlockReason::kPreempt, "preempt", {{7.7, 4.9, 5.3}}},
    {BlockReason::kInternal, "internal threads", {{6.4, 8.4, 1.6}}},
};

int Main(int argc, char** argv) {
  int scale = ScaleFromArgs(argc, argv, 10);
  KernelConfig config;  // MK40 defaults.
  WorkloadParams params;
  params.scale = scale;

  WorkloadReport reports[3];
  std::string metrics_json[3];
  for (int i = 0; i < 3; ++i) {
    params.post_run = &CaptureMetricsJson;
    params.post_run_arg = &metrics_json[i];
    reports[i] = kTableWorkloads[i].fn(config, params);
  }

  std::printf("Table 1: Frequency of Stack Discarding with Continuations\n");
  std::printf("Kernel model: MK40 (continuations); workload scale %d\n", scale);
  std::printf("Per cell: discarding blocks, measured %% of all blocks, [paper %%]\n\n");

  std::printf("%-22s", "Operations Using");
  for (const auto& w : kTableWorkloads) {
    std::printf(" | %26s", w.name);
  }
  std::printf("\n%-22s", "Stack Discard");
  for (int i = 0; i < 3; ++i) {
    std::printf(" | %10s %6s %7s", "blocks", "%", "[paper]");
  }
  std::printf("\n");

  for (const auto& row : kRows) {
    std::printf("%-22s", row.label);
    for (int i = 0; i < 3; ++i) {
      const auto& st = reports[i].transfer;
      const auto& cell = st.by_reason[static_cast<int>(row.reason)];
      std::printf(" | %10llu %6.1f [%5.1f]", static_cast<unsigned long long>(cell.discards),
                  Pct(cell.discards, st.total_blocks), row.paper.values[i]);
    }
    std::printf("\n");
  }

  std::printf("%-22s", "total stack discards");
  const double paper_total[3] = {98.4, 99.9, 100.0};
  for (int i = 0; i < 3; ++i) {
    const auto& st = reports[i].transfer;
    std::printf(" | %10llu %6.1f [%5.1f]",
                static_cast<unsigned long long>(st.TotalDiscards()),
                Pct(st.TotalDiscards(), st.total_blocks), paper_total[i]);
  }
  std::printf("\n%-22s", "no stack discards");
  const double paper_none[3] = {1.6, 0.1, 0.0};
  for (int i = 0; i < 3; ++i) {
    const auto& st = reports[i].transfer;
    std::printf(" | %10llu %6.1f [%5.1f]",
                static_cast<unsigned long long>(st.TotalNoDiscards()),
                Pct(st.TotalNoDiscards(), st.total_blocks), paper_none[i]);
  }
  std::printf("\n\n");

  for (int i = 0; i < 3; ++i) {
    std::printf("%-14s: %llu total blocks, %llu virtual ticks, %.3f s wall\n",
                reports[i].name.c_str(),
                static_cast<unsigned long long>(reports[i].transfer.total_blocks),
                static_cast<unsigned long long>(reports[i].virtual_time),
                reports[i].wall_seconds);
  }

  // Optional machine-readable output: metrics holds one key per workload,
  // each value that run's full metrics-registry dump.
  BenchJsonBuilder json("table1_discards");
  json.Config("scale", scale).Config("model", "mk40");
  for (int i = 0; i < 3; ++i) {
    json.MetricJson(kTableWorkloads[i].name, metrics_json[i]);
  }
  json.Write();
  return 0;
}

}  // namespace
}  // namespace mkc

int main(int argc, char** argv) { return mkc::Main(argc, argv); }
