// Reproduces Table 2: "Frequency of Continuation Recognition and Stack
// Handoff" — same three workloads, reporting what fraction of all blocking
// operations used a stack handoff and how many resumptions were recognized.
//
// Beyond the paper's aggregate rows, the bench reports the generalized
// recognition table's view: a per-continuation breakdown (blocks, resumes,
// recognized, rate) for every continuation that saw traffic, plus a 2-node
// lossy netipc run exercising the wakeup-absorption handlers
// (netipc_recv_continue / netipc_ack_continue). The per-site rates feed the
// CI gate (tools/check_perf_regression.py --recognition against
// bench/baselines/recognition.json).
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/net/cluster.h"
#include "src/obs/introspect.h"
#include "src/workload/workload.h"

namespace mkc {
namespace {

// One registry row worth reporting: saw at least one block or resumption.
struct ContRow {
  std::string name;
  std::uint64_t blocks = 0;
  std::uint64_t resumes = 0;
  std::uint64_t recognitions = 0;

  double RatePct() const {
    const std::uint64_t total = resumes + recognitions;
    return total == 0 ? 0.0
                      : 100.0 * static_cast<double>(recognitions) /
                            static_cast<double>(total);
  }
};

// Merges one kernel's registry counts into `rows` (summing by name — the
// cluster section aggregates every node into one table).
void CollectRows(const Kernel& kernel, std::vector<ContRow>* rows) {
  for (const ContinuationInfo& info : kernel.continuations().entries()) {
    if (info.blocks == 0 && info.resumes == 0 && info.recognitions == 0) {
      continue;
    }
    ContRow* row = nullptr;
    for (auto& r : *rows) {
      if (r.name == info.name) {
        row = &r;
        break;
      }
    }
    if (row == nullptr) {
      rows->emplace_back();
      row = &rows->back();
      row->name = info.name;
    }
    row->blocks += info.blocks;
    row->resumes += info.resumes;
    row->recognitions += info.recognitions;
  }
}

void CapturePerContinuation(Kernel& kernel, void* arg) {
  CollectRows(kernel, static_cast<std::vector<ContRow>*>(arg));
}

void PrintRows(const char* title, const std::vector<ContRow>& rows) {
  std::printf("\n%s — per-continuation recognition:\n", title);
  std::printf("  %-28s %10s %10s %12s %8s\n", "continuation", "blocks", "resumes",
              "recognized", "rate");
  for (const auto& r : rows) {
    std::printf("  %-28s %10llu %10llu %12llu %7.1f%%\n", r.name.c_str(),
                static_cast<unsigned long long>(r.blocks),
                static_cast<unsigned long long>(r.resumes),
                static_cast<unsigned long long>(r.recognitions), r.RatePct());
  }
}

std::string RowsJson(const std::vector<ContRow>& rows) {
  std::string out = "{";
  bool first = true;
  for (const auto& r : rows) {
    char buf[192];
    std::snprintf(buf, sizeof(buf),
                  "%s\"%s\":{\"blocks\":%llu,\"resumes\":%llu,"
                  "\"recognized\":%llu,\"rate_pct\":%.2f}",
                  first ? "" : ",", r.name.c_str(),
                  static_cast<unsigned long long>(r.blocks),
                  static_cast<unsigned long long>(r.resumes),
                  static_cast<unsigned long long>(r.recognitions), r.RatePct());
    out += buf;
    first = false;
  }
  out += '}';
  return out;
}

int Main(int argc, char** argv) {
  int scale = ScaleFromArgs(argc, argv, 10);
  KernelConfig config;  // MK40 defaults.
  // The registry's per-continuation accounting rides on the profiler switch;
  // sampling is observability-only, so the workload numbers are unchanged.
  config.profile_interval = 5000;
  WorkloadParams params;
  params.scale = scale;

  WorkloadReport reports[3];
  std::vector<ContRow> rows[3];
  for (int i = 0; i < 3; ++i) {
    params.post_run = &CapturePerContinuation;
    params.post_run_arg = &rows[i];
    reports[i] = kTableWorkloads[i].fn(config, params);
  }

  std::printf("Table 2: Frequency of Continuation Recognition and Stack Handoff\n");
  std::printf("Kernel model: MK40 (continuations); workload scale %d\n", scale);
  std::printf("Per cell: count, measured %% of total blocks, [paper %%]\n\n");

  std::printf("%-16s", "");
  for (const auto& w : kTableWorkloads) {
    std::printf(" | %26s", w.name);
  }
  std::printf("\n");

  std::printf("%-16s", "total blocks");
  for (const auto& r : reports) {
    std::printf(" | %10llu %6.1f [%5.1f]",
                static_cast<unsigned long long>(r.transfer.total_blocks), 100.0, 100.0);
  }
  std::printf("\n");

  const double paper_handoff[3] = {96.8, 99.7, 100.0};
  std::printf("%-16s", "stack handoff");
  for (int i = 0; i < 3; ++i) {
    const auto& st = reports[i].transfer;
    std::printf(" | %10llu %6.1f [%5.1f]",
                static_cast<unsigned long long>(st.stack_handoffs),
                Pct(st.stack_handoffs, st.total_blocks), paper_handoff[i]);
  }
  std::printf("\n");

  const double paper_recognition[3] = {60.2, 72.3, 85.9};
  std::printf("%-16s", "recognition");
  for (int i = 0; i < 3; ++i) {
    const auto& st = reports[i].transfer;
    std::printf(" | %10llu %6.1f [%5.1f]",
                static_cast<unsigned long long>(st.recognitions),
                Pct(st.recognitions, st.total_blocks), paper_recognition[i]);
  }
  std::printf("\n");

  for (int i = 0; i < 3; ++i) {
    PrintRows(kTableWorkloads[i].name, rows[i]);
  }

  // The wakeup side of the generalized table: a lossy 2-node cluster where
  // the netipc protocol threads' resumptions are absorbed in the waker's
  // context (netipc_recv_continue forwards in the sender's frame,
  // netipc_ack_continue services packets/timeouts/kicks in event context).
  const int kNetNodes = 2;
  const std::uint32_t kNetDropPerMille = 50;
  const std::uint64_t kNetSeed = 7;
  config.seed = kNetSeed;
  LinkConfig link;
  link.drop_per_mille = kNetDropPerMille;
  Cluster cluster(config, kNetNodes, link);
  ClusterRpcParams cp;
  cp.scale = scale;
  ClusterReport cr = RunClusterRpcWorkload(cluster, cp);
  std::vector<ContRow> net_rows;
  std::uint64_t wakeup_recognitions = 0;
  for (int i = 0; i < kNetNodes; ++i) {
    CollectRows(cluster.node(i), &net_rows);
    wakeup_recognitions += cluster.node(i).transfer_stats().wakeup_recognitions;
  }
  PrintRows("NetIPC cluster (2 nodes, lossy)", net_rows);
  std::printf("  rpcs=%llu retransmits=%llu wakeup_recognitions=%llu vtime=%llu\n",
              static_cast<unsigned long long>(cr.rpcs_ok),
              static_cast<unsigned long long>(cr.net.retransmits),
              static_cast<unsigned long long>(wakeup_recognitions),
              static_cast<unsigned long long>(cr.virtual_time));

  BenchJsonBuilder json("table2_recognition");
  json.Config("scale", scale).Config("model", "mk40");
  for (int i = 0; i < 3; ++i) {
    const auto& st = reports[i].transfer;
    char buf[224];
    std::snprintf(buf, sizeof(buf),
                  "{\"total_blocks\":%llu,\"stack_handoffs\":%llu,"
                  "\"recognitions\":%llu,\"handoff_pct\":%.2f,\"recognition_pct\":%.2f,"
                  "\"per_continuation\":",
                  static_cast<unsigned long long>(st.total_blocks),
                  static_cast<unsigned long long>(st.stack_handoffs),
                  static_cast<unsigned long long>(st.recognitions),
                  Pct(st.stack_handoffs, st.total_blocks),
                  Pct(st.recognitions, st.total_blocks));
    std::string entry = buf;
    entry += RowsJson(rows[i]);
    entry += '}';
    json.MetricJson(kTableWorkloads[i].name, entry);
  }
  {
    char buf[224];
    std::snprintf(buf, sizeof(buf),
                  "{\"nodes\":%d,\"drop_per_mille\":%u,\"seed\":%llu,"
                  "\"rpcs_ok\":%llu,\"wakeup_recognitions\":%llu,"
                  "\"per_continuation\":",
                  kNetNodes, kNetDropPerMille,
                  static_cast<unsigned long long>(kNetSeed),
                  static_cast<unsigned long long>(cr.rpcs_ok),
                  static_cast<unsigned long long>(wakeup_recognitions));
    std::string entry = buf;
    entry += RowsJson(net_rows);
    entry += '}';
    json.MetricJson("netipc_cluster", entry);
  }
  json.Write();
  return 0;
}

}  // namespace
}  // namespace mkc

int main(int argc, char** argv) { return mkc::Main(argc, argv); }
