// Reproduces Table 2: "Frequency of Continuation Recognition and Stack
// Handoff" — same three workloads, reporting what fraction of all blocking
// operations used a stack handoff and how many resumptions were recognized.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/workload/workload.h"

namespace mkc {
namespace {

int Main(int argc, char** argv) {
  int scale = ScaleFromArgs(argc, argv, 10);
  KernelConfig config;  // MK40 defaults.
  WorkloadParams params;
  params.scale = scale;

  WorkloadReport reports[3];
  for (int i = 0; i < 3; ++i) {
    reports[i] = kTableWorkloads[i].fn(config, params);
  }

  std::printf("Table 2: Frequency of Continuation Recognition and Stack Handoff\n");
  std::printf("Kernel model: MK40 (continuations); workload scale %d\n", scale);
  std::printf("Per cell: count, measured %% of total blocks, [paper %%]\n\n");

  std::printf("%-16s", "");
  for (const auto& w : kTableWorkloads) {
    std::printf(" | %26s", w.name);
  }
  std::printf("\n");

  std::printf("%-16s", "total blocks");
  for (const auto& r : reports) {
    std::printf(" | %10llu %6.1f [%5.1f]",
                static_cast<unsigned long long>(r.transfer.total_blocks), 100.0, 100.0);
  }
  std::printf("\n");

  const double paper_handoff[3] = {96.8, 99.7, 100.0};
  std::printf("%-16s", "stack handoff");
  for (int i = 0; i < 3; ++i) {
    const auto& st = reports[i].transfer;
    std::printf(" | %10llu %6.1f [%5.1f]",
                static_cast<unsigned long long>(st.stack_handoffs),
                Pct(st.stack_handoffs, st.total_blocks), paper_handoff[i]);
  }
  std::printf("\n");

  const double paper_recognition[3] = {60.2, 72.3, 85.9};
  std::printf("%-16s", "recognition");
  for (int i = 0; i < 3; ++i) {
    const auto& st = reports[i].transfer;
    std::printf(" | %10llu %6.1f [%5.1f]",
                static_cast<unsigned long long>(st.recognitions),
                Pct(st.recognitions, st.total_blocks), paper_recognition[i]);
  }
  std::printf("\n");

  BenchJsonBuilder json("table2_recognition");
  json.Config("scale", scale).Config("model", "mk40");
  for (int i = 0; i < 3; ++i) {
    const auto& st = reports[i].transfer;
    char buf[224];
    std::snprintf(buf, sizeof(buf),
                  "{\"total_blocks\":%llu,\"stack_handoffs\":%llu,"
                  "\"recognitions\":%llu,\"handoff_pct\":%.2f,\"recognition_pct\":%.2f}",
                  static_cast<unsigned long long>(st.total_blocks),
                  static_cast<unsigned long long>(st.stack_handoffs),
                  static_cast<unsigned long long>(st.recognitions),
                  Pct(st.stack_handoffs, st.total_blocks),
                  Pct(st.recognitions, st.total_blocks));
    json.MetricJson(kTableWorkloads[i].name, buf);
  }
  json.Write();
  return 0;
}

}  // namespace
}  // namespace mkc

int main(int argc, char** argv) { return mkc::Main(argc, argv); }
