// Shared helpers for the table-reproduction benches.
#ifndef MACHCONT_BENCH_BENCH_UTIL_H_
#define MACHCONT_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

namespace mkc {

inline double Pct(std::uint64_t part, std::uint64_t whole) {
  return whole == 0 ? 0.0 : 100.0 * static_cast<double>(part) / static_cast<double>(whole);
}

// Scale factor from argv[1] or a default; benches accept a single optional
// argument to trade run time for fidelity to the paper's block counts.
inline int ScaleFromArgs(int argc, char** argv, int default_scale) {
  if (argc > 1) {
    int scale = std::atoi(argv[1]);
    if (scale > 0) {
      return scale;
    }
  }
  return default_scale;
}

class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    std::chrono::duration<double> d = std::chrono::steady_clock::now() - start_;
    return d.count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace mkc

#endif  // MACHCONT_BENCH_BENCH_UTIL_H_
