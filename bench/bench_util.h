// Shared helpers for the table-reproduction benches.
#ifndef MACHCONT_BENCH_BENCH_UTIL_H_
#define MACHCONT_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>

#include "src/obs/trace_export.h"  // JsonEscape

namespace mkc {

inline double Pct(std::uint64_t part, std::uint64_t whole) {
  return whole == 0 ? 0.0 : 100.0 * static_cast<double>(part) / static_cast<double>(whole);
}

// Scale factor from argv[1] or a default; benches accept a single optional
// argument to trade run time for fidelity to the paper's block counts.
inline int ScaleFromArgs(int argc, char** argv, int default_scale) {
  if (argc > 1) {
    int scale = std::atoi(argv[1]);
    if (scale > 0) {
      return scale;
    }
  }
  return default_scale;
}

// Machine-readable bench output: when MACHCONT_BENCH_JSON names a file, the
// bench writes `json` there alongside its human-readable table. Returns true
// if the file was written.
inline bool MaybeWriteBenchJson(const std::string& json) {
  const char* path = std::getenv("MACHCONT_BENCH_JSON");
  if (path == nullptr || path[0] == '\0') {
    return false;
  }
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench: cannot open %s for writing\n", path);
    return false;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::fprintf(stderr, "bench: wrote metrics JSON to %s\n", path);
  return true;
}

// Unified machine-readable bench output. Every bench_* binary reports
// through one schema:
//
//   {"bench": "<name>", "config": {...}, "metrics": {...}}
//
// `config` holds the knobs that shaped the run (scale, iterations, model);
// `metrics` holds what was measured. CI and tools/check_perf_regression.py
// parse this shape uniformly, so additions must stay backward-compatible:
// add keys, don't move them. Scalars go in via Config()/Metric(); nested
// arrays or objects are pre-rendered and attached with ConfigJson()/
// MetricJson(). (bench_micro is the one exception: google-benchmark already
// has its own --benchmark_format=json.)
class BenchJsonBuilder {
 public:
  explicit BenchJsonBuilder(std::string bench) : bench_(std::move(bench)) {}

  BenchJsonBuilder& Config(const std::string& key, long long v) {
    return ConfigJson(key, std::to_string(v));
  }
  BenchJsonBuilder& Config(const std::string& key, unsigned long long v) {
    return ConfigJson(key, std::to_string(v));
  }
  BenchJsonBuilder& Config(const std::string& key, int v) {
    return Config(key, static_cast<long long>(v));
  }
  BenchJsonBuilder& Config(const std::string& key, const std::string& v) {
    return ConfigJson(key, Quoted(v));
  }
  BenchJsonBuilder& Config(const std::string& key, const char* v) {
    return Config(key, std::string(v));
  }
  BenchJsonBuilder& ConfigJson(const std::string& key, const std::string& rendered) {
    Append(&config_, key, rendered);
    return *this;
  }

  BenchJsonBuilder& Metric(const std::string& key, long long v) {
    return MetricJson(key, std::to_string(v));
  }
  BenchJsonBuilder& Metric(const std::string& key, unsigned long long v) {
    return MetricJson(key, std::to_string(v));
  }
  BenchJsonBuilder& Metric(const std::string& key, std::uint64_t v) {
    return Metric(key, static_cast<unsigned long long>(v));
  }
  BenchJsonBuilder& Metric(const std::string& key, int v) {
    return Metric(key, static_cast<long long>(v));
  }
  BenchJsonBuilder& Metric(const std::string& key, double v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.4f", v);
    return MetricJson(key, buf);
  }
  BenchJsonBuilder& Metric(const std::string& key, const std::string& v) {
    return MetricJson(key, Quoted(v));
  }
  BenchJsonBuilder& MetricJson(const std::string& key, const std::string& rendered) {
    Append(&metrics_, key, rendered);
    return *this;
  }

  std::string Str() const {
    std::string out = "{\"bench\":\"";
    out += JsonEscape(bench_);
    out += "\",\"config\":{";
    out += config_;
    out += "},\"metrics\":{";
    out += metrics_;
    out += "}}\n";
    return out;
  }

  // Writes to $MACHCONT_BENCH_JSON if set; returns whether a file was written.
  bool Write() const { return MaybeWriteBenchJson(Str()); }

 private:
  static std::string Quoted(const std::string& v) {
    std::string out = "\"";
    out += JsonEscape(v);
    out += '"';
    return out;
  }

  static void Append(std::string* out, const std::string& key,
                     const std::string& rendered) {
    if (!out->empty()) {
      *out += ',';
    }
    *out += '"';
    *out += JsonEscape(key);
    *out += "\":";
    *out += rendered;
  }

  std::string bench_;
  std::string config_;
  std::string metrics_;
};

class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    std::chrono::duration<double> d = std::chrono::steady_clock::now() - start_;
    return d.count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace mkc

#endif  // MACHCONT_BENCH_BENCH_UTIL_H_
