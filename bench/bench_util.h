// Shared helpers for the table-reproduction benches.
#ifndef MACHCONT_BENCH_BENCH_UTIL_H_
#define MACHCONT_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace mkc {

inline double Pct(std::uint64_t part, std::uint64_t whole) {
  return whole == 0 ? 0.0 : 100.0 * static_cast<double>(part) / static_cast<double>(whole);
}

// Scale factor from argv[1] or a default; benches accept a single optional
// argument to trade run time for fidelity to the paper's block counts.
inline int ScaleFromArgs(int argc, char** argv, int default_scale) {
  if (argc > 1) {
    int scale = std::atoi(argv[1]);
    if (scale > 0) {
      return scale;
    }
  }
  return default_scale;
}

// Machine-readable bench output: when MACHCONT_BENCH_JSON names a file, the
// bench writes `json` there alongside its human-readable table. Returns true
// if the file was written.
inline bool MaybeWriteBenchJson(const std::string& json) {
  const char* path = std::getenv("MACHCONT_BENCH_JSON");
  if (path == nullptr || path[0] == '\0') {
    return false;
  }
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench: cannot open %s for writing\n", path);
    return false;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::fprintf(stderr, "bench: wrote metrics JSON to %s\n", path);
  return true;
}

class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    std::chrono::duration<double> d = std::chrono::steady_clock::now() - start_;
    return d.count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace mkc

#endif  // MACHCONT_BENCH_BENCH_UTIL_H_
