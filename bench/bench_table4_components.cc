// Reproduces Table 4: "Component Costs" — the per-primitive cost of kernel
// entry/exit, stack handoff and context switch.
//
// Two honest signals replace the paper's MIPS instruction counts (DESIGN.md):
//   * measured host ns per operation, and
//   * the machine layer's modeled word loads/stores (real memory traffic it
//     performs for each primitive).
#include <cstdio>

#include "bench/bench_util.h"
#include "src/ipc/ipc_space.h"
#include "src/kern/kernel.h"
#include "src/machine/context.h"
#include "src/machine/cost_model.h"
#include "src/machine/cycle_model.h"
#include "src/task/task.h"
#include "src/task/usermode.h"

namespace mkc {
namespace {

struct Probe {
  double ns_per_op = 0.0;
  double cycles_per_op = 0.0;  // Simulated machine cycles (cycle model).
  CostCounters entry;
  CostCounters exit;
  CostCounters handoff;
  CostCounters context_switch;
};

struct LoopState {
  int iterations = 0;
};

void NullSyscallLoop(void* arg) {
  auto* st = static_cast<LoopState*>(arg);
  for (int i = 0; i < st->iterations; ++i) {
    UserNullSyscall();
  }
}

void YieldLoop(void* arg) {
  auto* st = static_cast<LoopState*>(arg);
  for (int i = 0; i < st->iterations; ++i) {
    UserYield();
  }
}

// ns per null system call (entry + exit pair).
Probe MeasureNullSyscall(ControlTransferModel model, int iterations) {
  KernelConfig config;
  config.model = model;
  Kernel kernel(config);
  Task* task = kernel.CreateTask("t");
  LoopState st{iterations};
  kernel.CreateUserThread(task, &NullSyscallLoop, &st);
  kernel.ResetStats();
  WallTimer timer;
  Ticks t0 = kernel.clock().Now();
  kernel.Run();
  Probe probe;
  probe.ns_per_op = timer.Seconds() * 1e9 / iterations;
  probe.cycles_per_op =
      static_cast<double>(kernel.clock().Now() - t0) / static_cast<double>(iterations);
  probe.entry = kernel.cost_model().Get(CostOp::kSyscallEntry);
  probe.exit = kernel.cost_model().Get(CostOp::kSyscallExit);
  return probe;
}

// ns per thread-to-thread transfer: two yielding threads ping-pong the
// processor. Under MK40 each transfer is a stack handoff; under MK32 it is a
// full context switch — isolating exactly the pair Table 4 compares.
Probe MeasureTransfer(ControlTransferModel model, int iterations) {
  KernelConfig config;
  config.model = model;
  Kernel kernel(config);
  Task* task = kernel.CreateTask("t");
  LoopState st{iterations};
  kernel.CreateUserThread(task, &YieldLoop, &st);
  kernel.CreateUserThread(task, &YieldLoop, &st);
  kernel.ResetStats();
  WallTimer timer;
  Ticks t0 = kernel.clock().Now();
  kernel.Run();
  Probe probe;
  // Two threads x iterations transfers (approximately).
  probe.ns_per_op = timer.Seconds() * 1e9 / (2.0 * iterations);
  probe.cycles_per_op =
      static_cast<double>(kernel.clock().Now() - t0) / (2.0 * iterations);
  probe.handoff = kernel.cost_model().Get(CostOp::kStackHandoff);
  probe.context_switch = kernel.cost_model().Get(CostOp::kContextSwitch);
  return probe;
}

void PrintModeled(const char* label, const CostCounters& c) {
  if (c.calls == 0) {
    std::printf("  %-20s (not used)\n", label);
    return;
  }
  std::printf("  %-20s %10llu calls, %5.1f word-loads, %5.1f word-stores per call\n", label,
              static_cast<unsigned long long>(c.calls),
              static_cast<double>(c.word_loads) / static_cast<double>(c.calls),
              static_cast<double>(c.word_stores) / static_cast<double>(c.calls));
}

int Main(int argc, char** argv) {
  int iterations = 200000 * ScaleFromArgs(argc, argv, 1);

  MeasureNullSyscall(ControlTransferModel::kMK40, iterations / 10);  // Warm.
  Probe mk40_syscall = MeasureNullSyscall(ControlTransferModel::kMK40, iterations);
  Probe mk32_syscall = MeasureNullSyscall(ControlTransferModel::kMK32, iterations);
  Probe mk40_transfer = MeasureTransfer(ControlTransferModel::kMK40, iterations / 2);
  Probe mk32_transfer = MeasureTransfer(ControlTransferModel::kMK32, iterations / 2);

  std::printf("Table 4: Component Costs\n");
  std::printf("Paper (DS3100): instrs/loads/stores. Measured: host ns + modeled words.\n\n");

  std::printf("Simulated machine cycles per end-to-end operation (cycle model):\n");
  std::printf("%-28s %10s %10s   paper MK40      paper MK32\n", "", "MK40", "MK32");
  std::printf("%-28s %7.0f cyc %7.0f cyc   entry 64i/7l/25s  67i/8l/20s\n",
              "null syscall (entry+exit)", mk40_syscall.cycles_per_op,
              mk32_syscall.cycles_per_op);
  std::printf("%-28s %7.0f cyc %7.0f cyc   83i/22l/18s       250i/52l/27s\n",
              "yield transfer (handoff/switch)", mk40_transfer.cycles_per_op,
              mk32_transfer.cycles_per_op);
  std::printf("\nHost wall clock per operation:\n");
  std::printf("%-28s %12s %12s\n", "", "MK40", "MK32");
  std::printf("%-28s %9.1f ns %9.1f ns\n", "null syscall (entry+exit)",
              mk40_syscall.ns_per_op, mk32_syscall.ns_per_op);
  std::printf("%-28s %9.1f ns %9.1f ns\n", "transfer (handoff/switch)",
              mk40_transfer.ns_per_op, mk32_transfer.ns_per_op);

  std::printf("\nModeled machine-layer traffic (MK40 run):\n");
  PrintModeled("system call entry", mk40_syscall.entry);
  PrintModeled("system call exit", mk40_syscall.exit);
  PrintModeled("stack handoff", mk40_transfer.handoff);
  PrintModeled("context switch", mk40_transfer.context_switch);
  std::printf("Modeled machine-layer traffic (MK32 run):\n");
  PrintModeled("system call entry", mk32_syscall.entry);
  PrintModeled("system call exit", mk32_syscall.exit);
  PrintModeled("context switch", mk32_transfer.context_switch);

  std::printf("\nShape checks (paper in brackets):\n");
  std::printf("  switch-path / handoff-path cycles per transfer: %.2fx "
              "[250/83 = 3.0x on the bare primitive]\n",
              mk32_transfer.cycles_per_op / mk40_transfer.cycles_per_op);
  std::printf("  bare primitive cycle model: handoff %llu, context switch %llu\n",
              static_cast<unsigned long long>(kCycStackHandoff),
              static_cast<unsigned long long>(kCycContextSwitch));
  std::printf("  MK40 entry stores > MK32 entry stores: %s [paper: 25 vs 20]\n",
              mk40_syscall.entry.word_stores * mk32_syscall.entry.calls >
                      mk32_syscall.entry.word_stores * mk40_syscall.entry.calls
                  ? "yes"
                  : "no");
  std::printf("  context backend: %s (%d callee-saved words per raw switch)\n",
              kContextBackendName, kContextSwitchSavedWords);

  BenchJsonBuilder("table4_components")
      .Config("iterations", iterations)
      .Metric("mk40_syscall_cycles", mk40_syscall.cycles_per_op)
      .Metric("mk32_syscall_cycles", mk32_syscall.cycles_per_op)
      .Metric("mk40_transfer_cycles", mk40_transfer.cycles_per_op)
      .Metric("mk32_transfer_cycles", mk32_transfer.cycles_per_op)
      .Metric("switch_over_handoff",
              mk32_transfer.cycles_per_op / mk40_transfer.cycles_per_op)
      .Metric("handoff_cycles", static_cast<unsigned long long>(kCycStackHandoff))
      .Metric("context_switch_cycles",
              static_cast<unsigned long long>(kCycContextSwitch))
      .Write();
  return 0;
}

}  // namespace
}  // namespace mkc

int main(int argc, char** argv) { return mkc::Main(argc, argv); }
