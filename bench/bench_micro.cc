// Microbenchmarks of the raw substrate primitives (google-benchmark).
//
// These underpin the table benches: the asymmetry between ContextSwitch
// (save + restore) and ContextJump (restore only) is the machine-level fact
// behind the stack-handoff optimization.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "src/base/queue.h"
#include "src/base/rng.h"
#include "src/base/spinlock.h"
#include "src/machine/context.h"
#include "src/machine/stack.h"

namespace mkc {
namespace {

constexpr std::size_t kStackSize = 64 * 1024;

struct PingPong {
  Context main_ctx;
  Context other_ctx;
  bool stop = false;
};

void PartnerEntry(void* /*pass*/, void* arg) {
  auto* pp = static_cast<PingPong*>(arg);
  for (;;) {
    ContextSwitch(&pp->other_ctx, pp->main_ctx, nullptr);
  }
}

// One full save/restore round trip between two contexts.
void BM_ContextSwitchRoundTrip(benchmark::State& state) {
  std::vector<std::uint8_t> stack(kStackSize);
  PingPong pp;
  Context fresh = MakeContext(stack.data(), stack.size(), &PartnerEntry, &pp);
  ContextSwitch(&pp.main_ctx, fresh, nullptr);  // Partner now parked.
  for (auto _ : state) {
    ContextSwitch(&pp.main_ctx, pp.other_ctx, nullptr);
  }
  // Leave the partner suspended; its stack dies with this frame.
}
BENCHMARK(BM_ContextSwitchRoundTrip);

struct JumpState {
  Context main_ctx;
};

void JumpBackEntry(void* pass, void* /*arg*/) {
  auto* js = static_cast<JumpState*>(pass);
  ContextJump(js->main_ctx, nullptr);
}

// MakeContext + restore-only jump: the CallContinuation pattern.
void BM_MakeContextAndJump(benchmark::State& state) {
  std::vector<std::uint8_t> stack(kStackSize);
  JumpState js;
  for (auto _ : state) {
    Context fresh = MakeContext(stack.data(), stack.size(), &JumpBackEntry, nullptr);
    ContextSwitch(&js.main_ctx, fresh, &js);
  }
}
BENCHMARK(BM_MakeContextAndJump);

// Frame construction alone.
void BM_MakeContext(benchmark::State& state) {
  std::vector<std::uint8_t> stack(kStackSize);
  for (auto _ : state) {
    Context c = MakeContext(stack.data(), stack.size(), &JumpBackEntry, nullptr);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_MakeContext);

void BM_SpinLockUncontended(benchmark::State& state) {
  SpinLock lock;
  for (auto _ : state) {
    lock.Lock();
    lock.Unlock();
  }
}
BENCHMARK(BM_SpinLockUncontended);

struct BenchNode {
  QueueEntry link;
};

void BM_IntrusiveQueueEnqueueDequeue(benchmark::State& state) {
  IntrusiveQueue<BenchNode, &BenchNode::link> queue;
  BenchNode node;
  for (auto _ : state) {
    queue.EnqueueTail(&node);
    benchmark::DoNotOptimize(queue.DequeueHead());
  }
}
BENCHMARK(BM_IntrusiveQueueEnqueueDequeue);

void BM_KernelStackAllocate(benchmark::State& state) {
  for (auto _ : state) {
    KernelStack stack(16 * 1024);
    benchmark::DoNotOptimize(stack.base());
  }
}
BENCHMARK(BM_KernelStackAllocate);

void BM_Rng(benchmark::State& state) {
  Rng rng(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.Next());
  }
}
BENCHMARK(BM_Rng);

}  // namespace
}  // namespace mkc

BENCHMARK_MAIN();
