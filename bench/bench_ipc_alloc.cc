// Allocation-free IPC: what the per-CPU kmsg magazines buy on the queued
// message path.
//
// The server-farm workload runs under Mach 2.5 — the process model with no
// handoff fast path, so every one of its 64-byte RPCs materializes a kmsg
// (the paper's §3.4 point: hot-path kernel objects want per-processor
// caching, not a shared freelist). Each CPU point runs two legs:
//
//   magazines off — every kmsg alloc/free pays the legacy depot price
//     (kCycKmsgAlloc / kCycKmsgFree per element);
//   magazines on  — the common case hits the CPU-local magazine
//     (kCycKmsgMagazineHit); only refills/flushes pay the zone lock.
//
// Headline metric: modeled allocation cycles per queued message
// (ZoneStats.alloc_cycles summed over both size classes, divided by
// queued_sends), plus the magazine hit rate and end-to-end virtual time.
// Both legs run the same (config, seed, scale), so the per-point reduction
// is bit-deterministic; tools/check_perf_regression.py gates on it.
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "src/ipc/ipc_space.h"
#include "src/kern/kernel.h"
#include "src/kern/zone.h"
#include "src/workload/workload.h"

namespace mkc {
namespace {

// Zone counters captured by the post-run hook while the workload's kernel
// is still alive.
struct ZoneCapture {
  ZoneStats small;
  ZoneStats full;
};

void CaptureZones(Kernel& kernel, void* arg) {
  auto* c = static_cast<ZoneCapture*>(arg);
  c->small = kernel.ipc().kmsg_small_zone().stats();
  c->full = kernel.ipc().kmsg_full_zone().stats();
}

struct Leg {
  std::uint64_t queued_sends = 0;
  std::uint64_t alloc_cycles = 0;
  std::uint64_t magazine_hits = 0;
  std::uint64_t alloc_ops = 0;  // allocs + frees across both zones.
  std::uint64_t refills = 0;
  std::uint64_t flushes = 0;
  Ticks virtual_time = 0;
  double alloc_cycles_per_msg = 0.0;
  double hit_rate = 0.0;
  double ns_per_msg = 0.0;
};

Leg RunLeg(int cpus, bool magazines, int scale) {
  KernelConfig config;
  config.model = ControlTransferModel::kMach25;
  config.ncpu = cpus;
  config.ipc_kmsg_zones = magazines;

  ZoneCapture zones;
  WorkloadParams params;
  params.scale = scale;
  params.post_run = &CaptureZones;
  params.post_run_arg = &zones;

  WallTimer timer;
  WorkloadReport r = RunServerFarmWorkload(config, params);
  double wall = timer.Seconds();

  Leg leg;
  leg.queued_sends = r.ipc.queued_sends;
  leg.alloc_cycles = zones.small.alloc_cycles + zones.full.alloc_cycles;
  leg.magazine_hits = zones.small.magazine_hits + zones.full.magazine_hits;
  leg.alloc_ops =
      zones.small.allocs + zones.small.frees + zones.full.allocs + zones.full.frees;
  leg.refills = zones.small.refills + zones.full.refills;
  leg.flushes = zones.small.flushes + zones.full.flushes;
  leg.virtual_time = r.virtual_time;
  leg.alloc_cycles_per_msg =
      leg.queued_sends > 0 ? static_cast<double>(leg.alloc_cycles) /
                                 static_cast<double>(leg.queued_sends)
                           : 0.0;
  leg.hit_rate = leg.alloc_ops > 0 ? static_cast<double>(leg.magazine_hits) /
                                         static_cast<double>(leg.alloc_ops)
                                   : 0.0;
  leg.ns_per_msg = leg.queued_sends > 0
                       ? wall * 1e9 / static_cast<double>(leg.queued_sends)
                       : 0.0;
  return leg;
}

std::string LegJson(const Leg& leg) {
  char buf[384];
  std::snprintf(buf, sizeof(buf),
                "{\"queued_sends\":%llu,\"alloc_cycles\":%llu,"
                "\"alloc_cycles_per_msg\":%.4f,\"magazine_hits\":%llu,"
                "\"hit_rate\":%.4f,\"refills\":%llu,\"flushes\":%llu,"
                "\"virtual_time\":%llu}",
                static_cast<unsigned long long>(leg.queued_sends),
                static_cast<unsigned long long>(leg.alloc_cycles),
                leg.alloc_cycles_per_msg,
                static_cast<unsigned long long>(leg.magazine_hits), leg.hit_rate,
                static_cast<unsigned long long>(leg.refills),
                static_cast<unsigned long long>(leg.flushes),
                static_cast<unsigned long long>(leg.virtual_time));
  return buf;
}

int Main(int argc, char** argv) {
  int scale = ScaleFromArgs(argc, argv, 10);
  constexpr int kCpuPoints[] = {1, 4, 8};

  RunLeg(1, true, scale > 4 ? scale / 4 : 1);  // Warm the host allocator.

  std::printf("IPC allocation: kmsg magazines on the Mach 2.5 queued-RPC path "
              "(farm workload, scale %d)\n\n",
              scale);
  std::printf("%5s %12s | %15s %15s %10s | %10s %12s\n", "cpus", "msgs",
              "cyc/msg (off)", "cyc/msg (on)", "reduction", "hit rate",
              "vtime ratio");

  std::string point_json = "[";
  for (int cpus : kCpuPoints) {
    Leg off = RunLeg(cpus, false, scale);
    Leg on = RunLeg(cpus, true, scale);
    double reduction = off.alloc_cycles_per_msg > 0.0
                           ? 100.0 * (off.alloc_cycles_per_msg - on.alloc_cycles_per_msg) /
                                 off.alloc_cycles_per_msg
                           : 0.0;
    double vtime_ratio = off.virtual_time > 0
                             ? static_cast<double>(on.virtual_time) /
                                   static_cast<double>(off.virtual_time)
                             : 0.0;
    std::printf("%5d %12llu | %15.2f %15.2f %9.1f%% | %9.1f%% %12.4f\n", cpus,
                static_cast<unsigned long long>(on.queued_sends),
                off.alloc_cycles_per_msg, on.alloc_cycles_per_msg, reduction,
                100.0 * on.hit_rate, vtime_ratio);

    char buf[128];
    std::snprintf(buf, sizeof(buf), "%s{\"cpus\":%d,\"reduction_pct\":%.4f,",
                  point_json.size() > 1 ? "," : "", cpus, reduction);
    point_json += buf;
    point_json += "\"magazines_off\":" + LegJson(off);
    point_json += ",\"magazines_on\":" + LegJson(on) + "}";
  }
  point_json += "]";

  BenchJsonBuilder("ipc_alloc")
      .Config("workload", "farm")
      .Config("model", "mach25")
      .Config("scale", scale)
      .MetricJson("points", point_json)
      .Write();
  return 0;
}

}  // namespace
}  // namespace mkc

int main(int argc, char** argv) { return mkc::Main(argc, argv); }
