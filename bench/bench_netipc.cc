// Cross-node RPC throughput under packet loss: the canonical cluster RPC
// workload (clients on node 0, echo servers on nodes 1..N-1) swept over link
// drop rates. Every point is bit-deterministic for a fixed (scale, seed):
// same sequence of drops, same retransmit schedule, same virtual time.
//
// The sweep shows the go-back-N protocol's cost curve: at drop=0 the wire
// adds only serialization plus link latency per hop; as loss grows, head
// timeouts resend whole windows and throughput decays smoothly — with zero
// give-ups (no RPC dead-names) anywhere in the sweep.
//
// With MACHCONT_BENCH_JSON set, writes one JSON object with a point per
// drop rate (the CI netipc perf gate parses it).
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "src/net/cluster.h"

namespace mkc {
namespace {

constexpr int kNodes = 4;
constexpr std::uint64_t kSeed = 7;

struct PointResult {
  std::uint32_t drop_per_mille = 0;
  std::uint64_t rpcs = 0;
  Ticks virtual_time = 0;
  double rpc_per_mtick = 0.0;  // RPC round trips per million virtual ticks.
  NetStats net;
};

PointResult RunPoint(std::uint32_t drop_per_mille, int scale) {
  PointResult p;
  p.drop_per_mille = drop_per_mille;

  KernelConfig config;
  config.seed = kSeed;
  LinkConfig link;
  link.drop_per_mille = drop_per_mille;
  Cluster cluster(config, kNodes, link);

  ClusterRpcParams params;
  params.scale = scale;
  ClusterReport r = RunClusterRpcWorkload(cluster, params);

  p.rpcs = r.rpcs_ok;
  p.virtual_time = r.virtual_time;
  p.rpc_per_mtick = r.virtual_time > 0
                        ? 1e6 * static_cast<double>(r.rpcs_ok) /
                              static_cast<double>(r.virtual_time)
                        : 0.0;
  p.net = r.net;
  if (r.rpcs_failed > 0) {
    std::fprintf(stderr, "bench_netipc: %llu RPCs dead-named at drop=%u\n",
                 static_cast<unsigned long long>(r.rpcs_failed), drop_per_mille);
  }
  return p;
}

int Main(int argc, char** argv) {
  int scale = ScaleFromArgs(argc, argv, 10);
  constexpr std::uint32_t kDropPoints[] = {0, 5, 10, 20};

  std::printf(
      "netipc: cross-node RPC throughput vs link loss "
      "(%d nodes, scale %d, seed %llu)\n\n",
      kNodes, scale, static_cast<unsigned long long>(kSeed));
  std::printf("%9s %8s %14s %12s %8s %8s %8s %8s\n", "drop/1000", "RPCs",
              "virtual ticks", "RPC/Mtick", "drops", "retx", "giveups",
              "acks");

  std::string point_json = "[";
  double base = 0.0;
  for (std::size_t i = 0; i < sizeof(kDropPoints) / sizeof(kDropPoints[0]);
       ++i) {
    PointResult p = RunPoint(kDropPoints[i], scale);
    if (base == 0.0) {
      base = p.rpc_per_mtick;
    }
    std::printf("%9u %8llu %14llu %12.2f %8llu %8llu %8llu %8llu\n",
                p.drop_per_mille, static_cast<unsigned long long>(p.rpcs),
                static_cast<unsigned long long>(p.virtual_time),
                p.rpc_per_mtick, static_cast<unsigned long long>(p.net.drops),
                static_cast<unsigned long long>(p.net.retransmits),
                static_cast<unsigned long long>(p.net.give_ups),
                static_cast<unsigned long long>(p.net.acks_rx));

    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "%s{\"drop_per_mille\":%u,\"rpcs\":%llu,\"virtual_time\":%llu,"
        "\"rpc_per_mtick\":%.4f,\"drops\":%llu,\"retransmits\":%llu,"
        "\"give_ups\":%llu,\"packets_tx\":%llu,\"bytes_tx\":%llu}",
        i == 0 ? "" : ",", p.drop_per_mille,
        static_cast<unsigned long long>(p.rpcs),
        static_cast<unsigned long long>(p.virtual_time), p.rpc_per_mtick,
        static_cast<unsigned long long>(p.net.drops),
        static_cast<unsigned long long>(p.net.retransmits),
        static_cast<unsigned long long>(p.net.give_ups),
        static_cast<unsigned long long>(p.net.packets_tx),
        static_cast<unsigned long long>(p.net.bytes_tx));
    point_json += buf;
  }
  point_json += "]";

  std::printf("\nloss-free throughput %.2f RPC/Mtick; all points give_ups=0 "
              "expected\n", base);

  BenchJsonBuilder("netipc")
      .Config("workload", "cluster_rpc")
      .Config("nodes", kNodes)
      .Config("scale", scale)
      .Config("seed", static_cast<unsigned long long>(kSeed))
      .MetricJson("points", point_json)
      .Write();
  return 0;
}

}  // namespace
}  // namespace mkc

int main(int argc, char** argv) { return mkc::Main(argc, argv); }
