// Cross-node RPC throughput under packet loss: the canonical cluster RPC
// workload (clients on node 0, echo servers on nodes 1..N-1) swept over link
// drop rates. Every point is bit-deterministic for a fixed (scale, seed):
// same sequence of drops, same retransmit schedule, same virtual time.
//
// Each drop point runs twice — once on the v2 selective-repeat engine
// (SACK + piggybacked acks + frame coalescing + lazy-pull OOL) and once on
// the legacy go-back-N ablation (--netipc-gbn) — so the sweep doubles as the
// protocol comparison: v2 holds throughput under loss where go-back-N's
// head-of-line timeouts resend whole windows. The SLO tracker rides along
// and reports the whole-run rpc p99 per point. A second small sweep runs the
// OOL-heavy shape (every other request ships a 4 KiB region the server
// touches) to exercise the lazy-pull path under loss.
//
// With MACHCONT_BENCH_JSON set, writes one JSON object with a point per
// drop rate (the CI netipc perf gate parses it).
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "src/net/cluster.h"
#include "src/obs/slo.h"

namespace mkc {
namespace {

constexpr int kNodes = 4;
constexpr std::uint64_t kSeed = 7;

struct PointResult {
  std::uint32_t drop_per_mille = 0;
  std::uint64_t rpcs = 0;
  Ticks virtual_time = 0;
  double rpc_per_mtick = 0.0;  // RPC round trips per million virtual ticks.
  Ticks rpc_p99 = 0;           // Whole-run rpc round-trip p99 (node 0).
  NetStats net;
};

PointResult RunPoint(std::uint32_t drop_per_mille, int scale, bool gbn,
                     std::uint32_t ool_bytes) {
  PointResult p;
  p.drop_per_mille = drop_per_mille;

  KernelConfig config;
  config.seed = kSeed;
  config.netipc_gbn = gbn;
  config.slo_window = 200000;  // Arms the tracker; the p99 read is whole-run.
  LinkConfig link;
  link.drop_per_mille = drop_per_mille;
  Cluster cluster(config, kNodes, link);

  ClusterRpcParams params;
  params.scale = scale;
  if (ool_bytes > 0) {
    params.ool_bytes = ool_bytes;
    params.ool_every = 2;  // Every other request carries (and touches) OOL.
  }
  ClusterReport r = RunClusterRpcWorkload(cluster, params);

  p.rpcs = r.rpcs_ok;
  p.virtual_time = r.virtual_time;
  p.rpc_per_mtick = r.virtual_time > 0
                        ? 1e6 * static_cast<double>(r.rpcs_ok) /
                              static_cast<double>(r.virtual_time)
                        : 0.0;
  if (cluster.node(0).slo() != nullptr) {
    p.rpc_p99 = cluster.node(0).slo()->CumulativeKind(0).p99;
  }
  p.net = r.net;
  if (r.rpcs_failed > 0) {
    std::fprintf(stderr, "bench_netipc: %llu RPCs dead-named at drop=%u\n",
                 static_cast<unsigned long long>(r.rpcs_failed), drop_per_mille);
  }
  return p;
}

int Main(int argc, char** argv) {
  int scale = ScaleFromArgs(argc, argv, 10);
  constexpr std::uint32_t kDropPoints[] = {0, 5, 10, 20};
  constexpr std::size_t kNumPoints = sizeof(kDropPoints) / sizeof(kDropPoints[0]);

  std::printf(
      "netipc: cross-node RPC throughput vs link loss "
      "(%d nodes, scale %d, seed %llu)\n\n",
      kNodes, scale, static_cast<unsigned long long>(kSeed));
  std::printf("%9s %8s %12s %12s %8s %8s %8s %6s %6s %8s %9s\n", "drop/1000",
              "RPCs", "v2 RPC/Mt", "gbn RPC/Mt", "rpc-p99", "retx", "fast",
              "apig", "coal", "giveups", "bytes_tx");

  std::string point_json = "[";
  double base = 0.0;
  for (std::size_t i = 0; i < kNumPoints; ++i) {
    PointResult p = RunPoint(kDropPoints[i], scale, /*gbn=*/false, 0);
    PointResult g = RunPoint(kDropPoints[i], scale, /*gbn=*/true, 0);
    if (base == 0.0) {
      base = p.rpc_per_mtick;
    }
    std::printf("%9u %8llu %12.2f %12.2f %8llu %8llu %8llu %6llu %6llu %8llu %9llu\n",
                p.drop_per_mille, static_cast<unsigned long long>(p.rpcs),
                p.rpc_per_mtick, g.rpc_per_mtick,
                static_cast<unsigned long long>(p.rpc_p99),
                static_cast<unsigned long long>(p.net.retransmits),
                static_cast<unsigned long long>(p.net.fast_retransmits),
                static_cast<unsigned long long>(p.net.acks_piggybacked),
                static_cast<unsigned long long>(p.net.frames_coalesced),
                static_cast<unsigned long long>(p.net.give_ups),
                static_cast<unsigned long long>(p.net.bytes_tx));

    char buf[768];
    std::snprintf(
        buf, sizeof(buf),
        "%s{\"drop_per_mille\":%u,\"rpcs\":%llu,\"virtual_time\":%llu,"
        "\"rpc_per_mtick\":%.4f,\"rpc_p99\":%llu,\"drops\":%llu,"
        "\"retransmits\":%llu,\"fast_retransmits\":%llu,"
        "\"acks_piggybacked\":%llu,\"frames_coalesced\":%llu,"
        "\"give_ups\":%llu,\"packets_tx\":%llu,\"bytes_tx\":%llu,"
        "\"bytes_goodput\":%llu,\"gbn_rpc_per_mtick\":%.4f,"
        "\"gbn_bytes_tx\":%llu}",
        i == 0 ? "" : ",", p.drop_per_mille,
        static_cast<unsigned long long>(p.rpcs),
        static_cast<unsigned long long>(p.virtual_time), p.rpc_per_mtick,
        static_cast<unsigned long long>(p.rpc_p99),
        static_cast<unsigned long long>(p.net.drops),
        static_cast<unsigned long long>(p.net.retransmits),
        static_cast<unsigned long long>(p.net.fast_retransmits),
        static_cast<unsigned long long>(p.net.acks_piggybacked),
        static_cast<unsigned long long>(p.net.frames_coalesced),
        static_cast<unsigned long long>(p.net.give_ups),
        static_cast<unsigned long long>(p.net.packets_tx),
        static_cast<unsigned long long>(p.net.bytes_tx),
        static_cast<unsigned long long>(p.net.bytes_goodput),
        g.rpc_per_mtick, static_cast<unsigned long long>(g.net.bytes_tx));
    point_json += buf;
  }
  point_json += "]";

  // The OOL-heavy shape: every other request carries a 4 KiB region the
  // server walks, so half the traffic exercises the lazy-pull machinery.
  constexpr std::uint32_t kOolDropPoints[] = {0, 20};
  std::printf("\nool-heavy (4 KiB every other request, server touches):\n");
  std::printf("%9s %8s %12s %8s %9s %10s %8s\n", "drop/1000", "RPCs",
              "RPC/Mtick", "rpc-p99", "pulls", "pulled-B", "giveups");
  std::string ool_json = "[";
  for (std::size_t i = 0;
       i < sizeof(kOolDropPoints) / sizeof(kOolDropPoints[0]); ++i) {
    PointResult p = RunPoint(kOolDropPoints[i], scale, /*gbn=*/false, 4096);
    std::printf("%9u %8llu %12.2f %8llu %9llu %10llu %8llu\n",
                p.drop_per_mille, static_cast<unsigned long long>(p.rpcs),
                p.rpc_per_mtick, static_cast<unsigned long long>(p.rpc_p99),
                static_cast<unsigned long long>(p.net.ool_pulls),
                static_cast<unsigned long long>(p.net.ool_bytes_pulled),
                static_cast<unsigned long long>(p.net.give_ups));
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "%s{\"drop_per_mille\":%u,\"rpcs\":%llu,\"rpc_per_mtick\":%.4f,"
        "\"rpc_p99\":%llu,\"ool_pulls\":%llu,\"ool_bytes_pulled\":%llu,"
        "\"give_ups\":%llu,\"bytes_tx\":%llu}",
        i == 0 ? "" : ",", p.drop_per_mille,
        static_cast<unsigned long long>(p.rpcs), p.rpc_per_mtick,
        static_cast<unsigned long long>(p.rpc_p99),
        static_cast<unsigned long long>(p.net.ool_pulls),
        static_cast<unsigned long long>(p.net.ool_bytes_pulled),
        static_cast<unsigned long long>(p.net.give_ups),
        static_cast<unsigned long long>(p.net.bytes_tx));
    ool_json += buf;
  }
  ool_json += "]";

  std::printf("\nloss-free throughput %.2f RPC/Mtick; all points give_ups=0 "
              "expected\n", base);

  BenchJsonBuilder("netipc")
      .Config("workload", "cluster_rpc")
      .Config("nodes", kNodes)
      .Config("scale", scale)
      .Config("seed", static_cast<unsigned long long>(kSeed))
      .MetricJson("points", point_json)
      .MetricJson("ool_points", ool_json)
      .Write();
  return 0;
}

}  // namespace
}  // namespace mkc

int main(int argc, char** argv) { return mkc::Main(argc, argv); }
