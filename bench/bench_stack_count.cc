// Reproduces §3.4's stack-count results and §5's Firefly comparison:
//
//   * "Using MK40, the number of kernel stacks was, on average, 2.002" for
//     workloads with 24-43 kernel threads; worst cases 3-6.
//   * Topaz on a Firefly: 886 kernel threads were using 212 kernel stacks;
//     "In Mach ... 886 similarly blocked kernel-level threads would require
//     only 6 stacks" (5 processors + 1 special thread; on our uniprocessor:
//     1 + 1).
#include <cstdio>

#include "bench/bench_util.h"
#include "src/ipc/ipc_space.h"
#include "src/kern/kernel.h"
#include "src/task/task.h"
#include "src/task/usermode.h"
#include "src/workload/workload.h"

namespace mkc {
namespace {

struct FireflyState {
  PortId ports[8] = {};
  int parked = 0;
  int target = 0;
  std::uint64_t stacks_in_use = 0;
  std::uint64_t threads_total = 0;
};

void FireflyReceiver(void* arg) {
  auto* st = static_cast<FireflyState*>(arg);
  PortId port = st->ports[st->parked % 8];
  ++st->parked;
  UserMessage msg;
  UserMachMsg(&msg, kMsgRcvOpt, 0, kMaxInlineBytes, port);
}

void FireflyObserver(void* arg) {
  auto* st = static_cast<FireflyState*>(arg);
  while (st->parked < st->target) {
    UserYield();
  }
  Kernel& k = ActiveKernel();
  st->stacks_in_use = k.stack_pool().stats().in_use;
  st->threads_total = k.threads().size();
}

FireflyState RunFirefly(ControlTransferModel model, int threads) {
  KernelConfig config;
  config.model = model;
  config.kernel_stack_bytes = 16 * 1024;
  config.user_stack_bytes = 16 * 1024;
  Kernel kernel(config);
  Task* task = kernel.CreateTask("blocked-farm");
  static FireflyState st;
  st = FireflyState{};
  st.target = threads;
  for (auto& p : st.ports) {
    p = kernel.ipc().AllocatePort(task);
  }
  ThreadOptions daemon;
  daemon.daemon = true;
  for (int i = 0; i < threads; ++i) {
    kernel.CreateUserThread(task, &FireflyReceiver, &st, daemon);
  }
  kernel.CreateUserThread(task, &FireflyObserver, &st);
  kernel.Run();
  return st;
}

int Main(int argc, char** argv) {
  int scale = ScaleFromArgs(argc, argv, 10);

  std::printf("Stack-count experiments (par. 3.4 and the par. 5 Firefly comparison)\n\n");

  // --- Workload averages (MK40) ---------------------------------------
  KernelConfig config;
  WorkloadParams params;
  params.scale = scale;
  std::printf("%-16s %14s %14s %10s    [paper avg 2.002, worst 3-6]\n", "workload",
              "avg stacks", "max stacks", "samples");
  BenchJsonBuilder json("stack_count");
  json.Config("scale", scale).Config("model", "mk40");
  for (const auto& entry : kTableWorkloads) {
    WorkloadReport r = entry.fn(config, params);
    std::printf("%-16s %14.3f %14llu %10llu\n", entry.name, r.stacks.AverageInUse(),
                static_cast<unsigned long long>(r.stacks.max_in_use),
                static_cast<unsigned long long>(r.stacks.samples));
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "{\"avg_stacks\":%.3f,\"max_stacks\":%llu,\"samples\":%llu}",
                  r.stacks.AverageInUse(),
                  static_cast<unsigned long long>(r.stacks.max_in_use),
                  static_cast<unsigned long long>(r.stacks.samples));
    json.MetricJson(entry.name, buf);
  }

  // --- Firefly scenario: 886 blocked threads ----------------------------
  std::printf("\nFirefly scenario: 886 threads blocked in message receives\n");
  FireflyState mk40 = RunFirefly(ControlTransferModel::kMK40, 886);
  std::printf("  MK40: %llu stacks for %llu kernel threads"
              "   [paper: 6 stacks on a 5-CPU Firefly; Topaz used 212]\n",
              static_cast<unsigned long long>(mk40.stacks_in_use),
              static_cast<unsigned long long>(mk40.threads_total));
  FireflyState mk32 = RunFirefly(ControlTransferModel::kMK32, 886);
  std::printf("  MK32: %llu stacks for %llu kernel threads   [process model: one each]\n",
              static_cast<unsigned long long>(mk32.stacks_in_use),
              static_cast<unsigned long long>(mk32.threads_total));

  char firefly[160];
  std::snprintf(firefly, sizeof(firefly),
                "{\"threads\":886,\"mk40_stacks\":%llu,\"mk32_stacks\":%llu}",
                static_cast<unsigned long long>(mk40.stacks_in_use),
                static_cast<unsigned long long>(mk32.stacks_in_use));
  json.MetricJson("firefly", firefly);
  json.Write();
  return 0;
}

}  // namespace
}  // namespace mkc

int main(int argc, char** argv) { return mkc::Main(argc, argv); }
