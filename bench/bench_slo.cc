// Telemetry overhead gate: the SLO tracker must be a pure observer.
//
// Runs the server-farm RPC workload twice with identical (scale, seed) —
// once with every recorder off, once with the windowed SLO tracker armed —
// and compares virtual time. The tracker charges zero cycles by design
// (span bookkeeping happens outside the cycle model), so the two runs must
// land on the *same* virtual tick; the CI gate holds the delta under 1%
// so any future accounting change that starts billing observation to the
// simulation is caught immediately.
//
// With MACHCONT_BENCH_JSON set, writes the unified bench JSON for
// tools/check_perf_regression.py --slo.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/kern/kernel.h"
#include "src/obs/slo.h"
#include "src/workload/workload.h"

namespace mkc {
namespace {

constexpr std::uint64_t kSeed = 42;

struct SloCapture {
  std::uint64_t spans = 0;
  std::uint64_t rpc_count = 0;
  Ticks rpc_p50 = 0;
  Ticks rpc_p99 = 0;
  Ticks rpc_p999 = 0;
  std::uint64_t rpc_violations = 0;
};

void CaptureSlo(Kernel& kernel, void* arg) {
  auto* cap = static_cast<SloCapture*>(arg);
  if (kernel.slo() == nullptr) {
    return;
  }
  cap->spans = kernel.slo()->spans_recorded();
  SloKindSnapshot s = kernel.slo()->CumulativeKind(0);  // rpc
  cap->rpc_count = s.count;
  cap->rpc_p50 = s.p50;
  cap->rpc_p99 = s.p99;
  cap->rpc_p999 = s.p999;
  cap->rpc_violations = s.violations;
}

int Main(int argc, char** argv) {
  int scale = ScaleFromArgs(argc, argv, 5);

  WorkloadParams params;
  params.scale = scale;
  params.seed = kSeed;

  KernelConfig off;
  WorkloadReport r_off = RunServerFarmWorkload(off, params);

  KernelConfig armed;
  armed.slo_window = 200000;
  SloCapture cap;
  params.post_run = &CaptureSlo;
  params.post_run_arg = &cap;
  WorkloadReport r_slo = RunServerFarmWorkload(armed, params);

  double overhead_pct =
      r_off.virtual_time > 0
          ? 100.0 *
                (static_cast<double>(r_slo.virtual_time) -
                 static_cast<double>(r_off.virtual_time)) /
                static_cast<double>(r_off.virtual_time)
          : 0.0;

  std::printf("slo overhead: server-farm RPC workload, scale %d, seed %llu\n\n",
              scale, static_cast<unsigned long long>(kSeed));
  std::printf("%-24s %14s\n", "configuration", "virtual ticks");
  std::printf("%-24s %14llu\n", "recorders off",
              static_cast<unsigned long long>(r_off.virtual_time));
  std::printf("%-24s %14llu\n", "slo armed (200k window)",
              static_cast<unsigned long long>(r_slo.virtual_time));
  std::printf("\noverhead %.4f%% (must be < 1%%; expected exactly 0 — the "
              "tracker charges no cycles)\n", overhead_pct);
  std::printf("rpc spans %llu: p50=%llu p99=%llu p99.9=%llu violations=%llu\n",
              static_cast<unsigned long long>(cap.rpc_count),
              static_cast<unsigned long long>(cap.rpc_p50),
              static_cast<unsigned long long>(cap.rpc_p99),
              static_cast<unsigned long long>(cap.rpc_p999),
              static_cast<unsigned long long>(cap.rpc_violations));

  BenchJsonBuilder("slo")
      .Config("workload", "farm")
      .Config("scale", scale)
      .Config("seed", static_cast<unsigned long long>(kSeed))
      .Config("slo_window", 200000)
      .Metric("vtime_off", static_cast<unsigned long long>(r_off.virtual_time))
      .Metric("vtime_slo", static_cast<unsigned long long>(r_slo.virtual_time))
      .Metric("overhead_pct", overhead_pct)
      .Metric("rpc_spans", static_cast<unsigned long long>(cap.rpc_count))
      .Metric("rpc_p99", static_cast<unsigned long long>(cap.rpc_p99))
      .Metric("rpc_p999", static_cast<unsigned long long>(cap.rpc_p999))
      .Metric("rpc_violations", static_cast<unsigned long long>(cap.rpc_violations))
      .Write();
  return 0;
}

}  // namespace
}  // namespace mkc

int main(int argc, char** argv) { return mkc::Main(argc, argv); }
