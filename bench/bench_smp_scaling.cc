// SMP scale-out: RPC throughput of the server-farm workload swept over
// 1/2/4/8 simulated processors.
//
// Two legs per CPU count:
//   throughput — MK40 full: eight client/server pairs ping-ponging through
//     the RPC fast path. Virtual time is the frontier of the per-CPU clocks,
//     so RPCs-per-virtual-tick is the machine's parallel throughput.
//   stack     — MK40 with handoff disabled: every block discards its stack
//     and every resume allocates one, hammering the per-CPU free-stack
//     caches that front the global pool. Reports their hit rate.
//
// With MACHCONT_BENCH_JSON set, writes one JSON object with a point per CPU
// count (the CI perf-smoke step parses it).
#include <algorithm>
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "src/kern/kernel.h"
#include "src/kern/processor.h"
#include "src/workload/workload.h"

namespace mkc {
namespace {

// Per-CPU scheduler/stack counters, captured by the post-run hook while the
// workload's kernel is still alive.
struct CpuCounters {
  int cpus = 0;
  std::uint64_t steals = 0;
  std::uint64_t local_dequeues = 0;
  std::uint64_t idle_yields = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  double min_cpu_hit_rate = 1.0;  // Worst per-CPU stack-cache hit rate.
};

void CaptureCpuCounters(Kernel& kernel, void* arg) {
  auto* c = static_cast<CpuCounters*>(arg);
  *c = CpuCounters{};
  c->cpus = kernel.ncpu();
  for (int i = 0; i < kernel.ncpu(); ++i) {
    const Processor& cpu = kernel.cpu(i);
    c->steals += cpu.steals;
    c->local_dequeues += cpu.local_dequeues;
    c->idle_yields += cpu.idle_yields;
    c->cache_hits += cpu.stack_cache_hits;
    c->cache_misses += cpu.stack_cache_misses;
    std::uint64_t total = cpu.stack_cache_hits + cpu.stack_cache_misses;
    if (total > 0) {
      c->min_cpu_hit_rate = std::min(
          c->min_cpu_hit_rate, static_cast<double>(cpu.stack_cache_hits) /
                                   static_cast<double>(total));
    }
  }
}

struct PointResult {
  int cpus = 0;
  std::uint64_t rpcs = 0;
  Ticks virtual_time = 0;
  double rpc_per_mtick = 0.0;  // RPC round trips per million virtual ticks.
  CpuCounters sched;           // From the throughput leg.
  Ticks stack_virtual_time = 0;
  CpuCounters stack;           // From the no-handoff leg.
  double stack_hit_rate = 0.0;
};

PointResult RunPoint(int cpus, int scale) {
  PointResult p;
  p.cpus = cpus;

  WorkloadParams params;
  params.scale = scale;
  params.post_run = &CaptureCpuCounters;

  KernelConfig config;
  config.ncpu = cpus;
  params.post_run_arg = &p.sched;
  WorkloadReport r = RunServerFarmWorkload(config, params);
  // UserRpc is a send + a reply: two messages per round trip.
  p.rpcs = r.ipc.messages_sent / 2;
  p.virtual_time = r.virtual_time;
  p.rpc_per_mtick = r.virtual_time > 0
                        ? 1e6 * static_cast<double>(p.rpcs) /
                              static_cast<double>(r.virtual_time)
                        : 0.0;

  config.enable_handoff = false;
  params.post_run_arg = &p.stack;
  WorkloadReport rs = RunServerFarmWorkload(config, params);
  p.stack_virtual_time = rs.virtual_time;
  std::uint64_t total = p.stack.cache_hits + p.stack.cache_misses;
  if (cpus == 1) {
    // Single CPU bypasses the per-CPU caches: the comparable number is the
    // global pool's free-list hit rate.
    p.stack_hit_rate = rs.stacks.allocs > 0
                           ? static_cast<double>(rs.stacks.cache_hits) /
                                 static_cast<double>(rs.stacks.allocs)
                           : 0.0;
    p.stack.min_cpu_hit_rate = p.stack_hit_rate;
  } else {
    p.stack_hit_rate =
        total > 0 ? static_cast<double>(p.stack.cache_hits) / static_cast<double>(total) : 0.0;
  }
  return p;
}

int Main(int argc, char** argv) {
  int scale = ScaleFromArgs(argc, argv, 20);
  constexpr int kCpuPoints[] = {1, 2, 4, 8};

  std::printf("SMP scale-out: server-farm RPC throughput vs simulated CPUs (scale %d)\n\n",
              scale);
  std::printf("%5s %10s %14s %12s %9s %8s %12s %13s\n", "cpus", "RPCs", "virtual ticks",
              "RPC/Mtick", "speedup", "steals", "stk hit rate", "min CPU rate");

  PointResult points[4];
  double base = 0.0;
  std::string point_json = "[";
  for (int i = 0; i < 4; ++i) {
    PointResult p = RunPoint(kCpuPoints[i], scale);
    points[i] = p;
    if (base == 0.0) {
      base = p.rpc_per_mtick;
    }
    double speedup = base > 0.0 ? p.rpc_per_mtick / base : 0.0;
    std::printf("%5d %10llu %14llu %12.2f %8.2fx %8llu %11.1f%% %12.1f%%\n", p.cpus,
                static_cast<unsigned long long>(p.rpcs),
                static_cast<unsigned long long>(p.virtual_time), p.rpc_per_mtick, speedup,
                static_cast<unsigned long long>(p.sched.steals), 100.0 * p.stack_hit_rate,
                100.0 * p.stack.min_cpu_hit_rate);

    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"cpus\":%d,\"rpcs\":%llu,\"virtual_time\":%llu,"
                  "\"rpc_per_mtick\":%.4f,\"speedup\":%.4f,\"steals\":%llu,"
                  "\"local_dequeues\":%llu,\"idle_yields\":%llu,"
                  "\"stack_leg\":{\"virtual_time\":%llu,\"cache_hits\":%llu,"
                  "\"cache_misses\":%llu,\"hit_rate\":%.4f,\"min_cpu_hit_rate\":%.4f}}",
                  i == 0 ? "" : ",", p.cpus, static_cast<unsigned long long>(p.rpcs),
                  static_cast<unsigned long long>(p.virtual_time), p.rpc_per_mtick, speedup,
                  static_cast<unsigned long long>(p.sched.steals),
                  static_cast<unsigned long long>(p.sched.local_dequeues),
                  static_cast<unsigned long long>(p.sched.idle_yields),
                  static_cast<unsigned long long>(p.stack_virtual_time),
                  static_cast<unsigned long long>(p.stack.cache_hits),
                  static_cast<unsigned long long>(p.stack.cache_misses), p.stack_hit_rate,
                  p.stack.min_cpu_hit_rate);
    point_json += buf;
  }
  point_json += "]";

  double speedup4 = base > 0.0 ? points[2].rpc_per_mtick / base : 0.0;
  std::printf("\n4-CPU speedup %.2fx; 4-CPU stack-cache hit rate %.1f%%; "
              "steals at 4 CPUs: %llu\n",
              speedup4, 100.0 * points[2].stack_hit_rate,
              static_cast<unsigned long long>(points[2].sched.steals));

  BenchJsonBuilder("smp_scaling")
      .Config("workload", "farm")
      .Config("scale", scale)
      .MetricJson("points", point_json)
      .Write();
  return 0;
}

}  // namespace
}  // namespace mkc

int main(int argc, char** argv) { return mkc::Main(argc, argv); }
