// "Unix as an Application Program" (Golub et al. '90, §1.2): the whole point
// of making Mach 3.0's control transfer fast was that the operating system
// itself moved into a user-level server, turning every file-system call of
// every program into a cross-address-space RPC.
//
// This example builds that architecture: a multi-threaded user-level "Unix
// server" exporting open/read/write/close over mach_msg, and client
// "processes" running a file workload against it. Under MK40, each of those
// millions of syscalls-turned-RPCs rides the continuation fast path.
//
//   $ ./unix_server [clients] [files-per-client]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "src/ipc/ipc_space.h"
#include "src/ipc/mach_msg.h"
#include "src/kern/kernel.h"
#include "src/task/task.h"
#include "src/task/usermode.h"

namespace {

constexpr int kServerThreads = 3;
constexpr std::uint32_t kChunk = 512;  // Bytes per read/write RPC.

enum class FsOp : std::uint32_t { kOpen = 1, kRead, kWrite, kClose };

struct __attribute__((packed)) FsRequest {
  FsOp op;
  std::uint32_t fd;        // For read/write/close.
  std::uint32_t offset;    // For read/write.
  std::uint32_t length;    // Payload bytes (write) or wanted bytes (read).
  char name[32];           // For open.
  // Payload follows for writes.
};

struct __attribute__((packed)) FsReply {
  std::int32_t status;     // >= 0: fd (open) or byte count; < 0: error.
  // Payload follows for reads.
};

struct FsServer {
  mkc::PortId port = mkc::kInvalidPort;
  std::map<std::string, std::vector<std::byte>> files;
  std::map<std::uint32_t, std::string> fds;
  std::uint32_t next_fd = 3;
  std::uint64_t ops = 0;
};

FsServer* g_fs = nullptr;

void FsServerThread(void* /*arg*/) {
  FsServer* fs = g_fs;
  mkc::UserMessage msg;
  std::uint32_t reply_size = 0;
  mkc::PortId reply_to = mkc::kInvalidPort;
  for (;;) {
    msg.header.dest = reply_to;
    if (mkc::UserServeOnce(&msg, reply_size, fs->port) != mkc::KernReturn::kSuccess) {
      return;
    }
    reply_to = msg.header.reply;

    FsRequest req;
    std::memcpy(&req, msg.body, sizeof(req));
    FsReply reply{};
    reply_size = sizeof(reply);
    ++fs->ops;

    switch (req.op) {
      case FsOp::kOpen: {
        std::string name(req.name);
        fs->files.try_emplace(name);  // Create on first open.
        std::uint32_t fd = fs->next_fd++;
        fs->fds[fd] = name;
        reply.status = static_cast<std::int32_t>(fd);
        break;
      }
      case FsOp::kWrite: {
        auto it = fs->fds.find(req.fd);
        if (it == fs->fds.end()) {
          reply.status = -9;  // EBADF.
          break;
        }
        auto& data = fs->files[it->second];
        if (data.size() < req.offset + req.length) {
          data.resize(req.offset + req.length);
        }
        std::memcpy(data.data() + req.offset, msg.body + sizeof(req), req.length);
        reply.status = static_cast<std::int32_t>(req.length);
        break;
      }
      case FsOp::kRead: {
        auto it = fs->fds.find(req.fd);
        if (it == fs->fds.end()) {
          reply.status = -9;
          break;
        }
        const auto& data = fs->files[it->second];
        std::uint32_t n = 0;
        if (req.offset < data.size()) {
          n = std::min<std::uint32_t>(req.length,
                                      static_cast<std::uint32_t>(data.size()) - req.offset);
          std::memcpy(msg.body + sizeof(reply), data.data() + req.offset, n);
        }
        reply.status = static_cast<std::int32_t>(n);
        reply_size = sizeof(reply) + n;
        break;
      }
      case FsOp::kClose: {
        reply.status = fs->fds.erase(req.fd) != 0 ? 0 : -9;
        break;
      }
      default:
        reply.status = -22;  // EINVAL.
    }
    std::memcpy(msg.body, &reply, sizeof(reply));
  }
}

struct ClientCtx {
  int id = 0;
  int files = 0;
  mkc::PortId reply_port = mkc::kInvalidPort;
  std::uint64_t bytes_verified = 0;
  bool ok = true;
};

// The "emulated Unix process": creates files, writes a pattern, reads it
// back, verifies, closes — every step an RPC to the server.
void ClientProcess(void* arg) {
  auto* ctx = static_cast<ClientCtx*>(arg);
  mkc::UserMessage msg;
  FsRequest req{};
  FsReply reply{};

  for (int f = 0; f < ctx->files; ++f) {
    // open()
    req = FsRequest{};
    req.op = FsOp::kOpen;
    std::snprintf(req.name, sizeof(req.name), "/tmp/c%d_f%d", ctx->id, f);
    msg.header.dest = g_fs->port;
    std::memcpy(msg.body, &req, sizeof(req));
    if (mkc::UserRpc(&msg, sizeof(req), ctx->reply_port) != mkc::KernReturn::kSuccess) {
      ctx->ok = false;
      return;
    }
    std::memcpy(&reply, msg.body, sizeof(reply));
    auto fd = static_cast<std::uint32_t>(reply.status);

    // write() three chunks of a recognizable pattern.
    for (std::uint32_t c = 0; c < 3; ++c) {
      req = FsRequest{};
      req.op = FsOp::kWrite;
      req.fd = fd;
      req.offset = c * kChunk;
      req.length = kChunk;
      msg.header.dest = g_fs->port;
      std::memcpy(msg.body, &req, sizeof(req));
      for (std::uint32_t i = 0; i < kChunk; ++i) {
        msg.body[sizeof(req) + i] =
            static_cast<std::byte>((ctx->id * 31 + f * 7 + c * 3 + i) & 0xff);
      }
      mkc::UserRpc(&msg, sizeof(req) + kChunk, ctx->reply_port);
      mkc::UserWork(200);  // "Compute" between syscalls.
    }

    // read() back and verify.
    for (std::uint32_t c = 0; c < 3; ++c) {
      req = FsRequest{};
      req.op = FsOp::kRead;
      req.fd = fd;
      req.offset = c * kChunk;
      req.length = kChunk;
      msg.header.dest = g_fs->port;
      std::memcpy(msg.body, &req, sizeof(req));
      mkc::UserRpc(&msg, sizeof(req), ctx->reply_port);
      std::memcpy(&reply, msg.body, sizeof(reply));
      if (reply.status != static_cast<std::int32_t>(kChunk)) {
        ctx->ok = false;
        return;
      }
      for (std::uint32_t i = 0; i < kChunk; ++i) {
        auto expect = static_cast<std::byte>((ctx->id * 31 + f * 7 + c * 3 + i) & 0xff);
        if (msg.body[sizeof(reply) + i] != expect) {
          ctx->ok = false;
          return;
        }
        ++ctx->bytes_verified;
      }
    }

    // close()
    req = FsRequest{};
    req.op = FsOp::kClose;
    req.fd = fd;
    msg.header.dest = g_fs->port;
    std::memcpy(msg.body, &req, sizeof(req));
    mkc::UserRpc(&msg, sizeof(req), ctx->reply_port);
  }
}

}  // namespace

int main(int argc, char** argv) {
  int clients = argc > 1 ? std::atoi(argv[1]) : 8;
  int files = argc > 2 ? std::atoi(argv[2]) : 40;

  mkc::KernelConfig config;
  mkc::Kernel kernel(config);
  mkc::Task* server_task = kernel.CreateTask("unix-server");

  FsServer fs;
  g_fs = &fs;
  fs.port = kernel.ipc().AllocatePort(server_task);

  mkc::ThreadOptions daemon;
  daemon.daemon = true;
  for (int i = 0; i < kServerThreads; ++i) {
    kernel.CreateUserThread(server_task, &FsServerThread, nullptr, daemon);
  }

  std::vector<ClientCtx> ctxs(clients);
  for (int i = 0; i < clients; ++i) {
    char name[32];
    std::snprintf(name, sizeof(name), "process-%d", i);
    mkc::Task* t = kernel.CreateTask(name);
    ctxs[i].id = i;
    ctxs[i].files = files;
    ctxs[i].reply_port = kernel.ipc().AllocatePort(t);
    kernel.CreateUserThread(t, &ClientProcess, &ctxs[i]);
  }

  kernel.Run();

  bool all_ok = true;
  std::uint64_t bytes = 0;
  for (const auto& c : ctxs) {
    all_ok &= c.ok;
    bytes += c.bytes_verified;
  }
  const auto& ts = kernel.transfer_stats();
  const auto& ipc = kernel.ipc().stats();
  std::printf("unix server: %llu file syscalls served for %d processes, %s\n",
              static_cast<unsigned long long>(fs.ops), clients,
              all_ok ? "all data verified" : "DATA CORRUPTION");
  std::printf("bytes round-tripped and checked: %llu\n",
              static_cast<unsigned long long>(bytes));
  std::printf("syscall RPCs: %llu sent, %llu via the fast handoff path (%.1f%%)\n",
              static_cast<unsigned long long>(ipc.messages_sent),
              static_cast<unsigned long long>(ipc.fast_rpc_handoffs),
              100.0 * static_cast<double>(ipc.fast_rpc_handoffs) /
                  static_cast<double>(ipc.messages_sent));
  std::printf("kernel stacks: avg %.3f for %zu threads; recognitions %llu\n",
              kernel.stack_pool().stats().AverageInUse(), kernel.threads().size(),
              static_cast<unsigned long long>(ts.recognitions));
  return all_ok ? 0 : 1;
}
