// A multi-client RPC service: N clients hammer a pool of server threads.
// Demonstrates the public IPC API on the kind of server workload the paper's
// introduction motivates, and shows why stack discarding matters: with many
// threads mostly blocked in receives, kernel stacks stay a per-processor
// resource under MK40.
//
//   $ ./echo_server [clients] [requests-per-client]
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/ipc/ipc_space.h"
#include "src/ipc/mach_msg.h"
#include "src/kern/kernel.h"
#include "src/task/task.h"
#include "src/task/usermode.h"

namespace {

constexpr int kServerThreads = 4;

struct Service {
  mkc::PortId service_port = mkc::kInvalidPort;
  int requests_per_client = 0;
  std::uint64_t served = 0;
};

struct ClientCtx {
  Service* service = nullptr;
  mkc::PortId reply_port = mkc::kInvalidPort;
  int id = 0;
};

void ServerWorker(void* arg) {
  auto* svc = static_cast<Service*>(arg);
  mkc::UserMessage msg;
  if (mkc::UserServeOnce(&msg, 0, svc->service_port) != mkc::KernReturn::kSuccess) {
    return;
  }
  for (;;) {
    // Echo with a tag so clients can verify integrity.
    std::uint64_t payload;
    std::memcpy(&payload, msg.body, sizeof(payload));
    payload ^= 0xabcdef;
    std::memcpy(msg.body, &payload, sizeof(payload));
    ++svc->served;
    msg.header.dest = msg.header.reply;
    if (mkc::UserServeOnce(&msg, msg.header.size, svc->service_port) !=
        mkc::KernReturn::kSuccess) {
      return;
    }
  }
}

void Client(void* arg) {
  auto* ctx = static_cast<ClientCtx*>(arg);
  mkc::UserMessage msg;
  for (int i = 0; i < ctx->service->requests_per_client; ++i) {
    std::uint64_t payload = (static_cast<std::uint64_t>(ctx->id) << 32) | i;
    msg.header.dest = ctx->service->service_port;
    std::memcpy(msg.body, &payload, sizeof(payload));
    if (mkc::UserRpc(&msg, sizeof(payload), ctx->reply_port) != mkc::KernReturn::kSuccess) {
      std::printf("client %d: RPC failed\n", ctx->id);
      return;
    }
    std::uint64_t echoed;
    std::memcpy(&echoed, msg.body, sizeof(echoed));
    if (echoed != (payload ^ 0xabcdef)) {
      std::printf("client %d: echo mismatch!\n", ctx->id);
      return;
    }
    // Interleave some thinking time so clients overlap.
    mkc::UserWork(50);
  }
}

}  // namespace

int main(int argc, char** argv) {
  int clients = argc > 1 ? std::atoi(argv[1]) : 16;
  int requests = argc > 2 ? std::atoi(argv[2]) : 2000;

  mkc::KernelConfig config;
  mkc::Kernel kernel(config);
  mkc::Task* server_task = kernel.CreateTask("echo-service");

  Service svc;
  svc.service_port = kernel.ipc().AllocatePort(server_task);
  svc.requests_per_client = requests;

  mkc::ThreadOptions daemon;
  daemon.daemon = true;
  for (int i = 0; i < kServerThreads; ++i) {
    kernel.CreateUserThread(server_task, &ServerWorker, &svc, daemon);
  }

  std::vector<ClientCtx> ctxs(clients);
  std::vector<mkc::Task*> client_tasks(clients);
  for (int i = 0; i < clients; ++i) {
    char name[32];
    std::snprintf(name, sizeof(name), "client-%d", i);
    client_tasks[i] = kernel.CreateTask(name);
    ctxs[i].service = &svc;
    ctxs[i].reply_port = kernel.ipc().AllocatePort(client_tasks[i]);
    ctxs[i].id = i;
    kernel.CreateUserThread(client_tasks[i], &Client, &ctxs[i]);
  }

  kernel.Run();

  const auto& ts = kernel.transfer_stats();
  const auto& stacks = kernel.stack_pool().stats();
  std::printf("served %llu requests from %d clients across %d server threads\n",
              static_cast<unsigned long long>(svc.served), clients, kServerThreads);
  std::printf("threads: %zu; kernel stacks: avg %.3f in use, max %llu\n",
              kernel.threads().size(), stacks.AverageInUse(),
              static_cast<unsigned long long>(stacks.max_in_use));
  std::printf("blocks %llu, handoffs %llu (%.1f%%), recognitions %llu (%.1f%%)\n",
              static_cast<unsigned long long>(ts.total_blocks),
              static_cast<unsigned long long>(ts.stack_handoffs),
              100.0 * static_cast<double>(ts.stack_handoffs) /
                  static_cast<double>(ts.total_blocks),
              static_cast<unsigned long long>(ts.recognitions),
              100.0 * static_cast<double>(ts.recognitions) /
                  static_cast<double>(ts.total_blocks));
  return 0;
}
