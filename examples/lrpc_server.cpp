// The LRPC-style user-continuation override (§4).
//
// "We are experimenting with an extension to the IPC interface that enables
// a thread to register an overriding user-level continuation for system call
// returns. This extension eliminates the cost of saving and restoring
// register state for the server thread and allows the server thread to
// discard its user-level stack while blocked waiting for an RPC request."
//
// The server below never returns from a mach_msg in the ordinary sense:
// every kernel exit enters ServerLoop at the top of a fresh user stack.
//
//   $ ./lrpc_server [requests]
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/ipc/ipc_space.h"
#include "src/ipc/mach_msg.h"
#include "src/kern/kernel.h"
#include "src/task/task.h"
#include "src/task/usermode.h"

namespace {

struct LrpcDemo {
  mkc::PortId service_port = mkc::kInvalidPort;
  mkc::PortId reply_port = mkc::kInvalidPort;
  int requests = 0;
  int served = 0;
  mkc::UserMessage server_buffer;  // Static buffer: the stack is disposable.
};

LrpcDemo* g_demo = nullptr;

int g_entries = 0;

// The server's registered user continuation: every return from the kernel
// lands here, on a FRESH user stack — the previous user context was
// discarded while the server was blocked. Note there is no loop construct:
// the "loop" is the kernel repeatedly entering this function.
void ServerLoop(std::uint64_t status) {
  auto* d = g_demo;
  auto& msg = d->server_buffer;
  int entry = g_entries++;
  if (entry == 0) {
    // First entry (from registering the override): start the first receive.
    // UserServeOnce never returns here — its kernel exit re-enters
    // ServerLoop at the top.
    mkc::UserServeOnce(&msg, 0, d->service_port);
  } else if (static_cast<mkc::KernReturn>(static_cast<std::uint32_t>(status)) ==
             mkc::KernReturn::kSuccess) {
    // A request is sitting in the static buffer: serve it, then send the
    // reply and receive the next request in one combined call.
    std::uint64_t x;
    std::memcpy(&x, msg.body, sizeof(x));
    x += 1000;
    std::memcpy(msg.body, &x, sizeof(x));
    msg.header.dest = msg.header.reply;
    ++d->served;
    mkc::UserServeOnce(&msg, sizeof(x), d->service_port);
  }
  // Receive failed (port died): leave.
  mkc::UserThreadExit();
}

void ServerBootstrap(void* /*arg*/) {
  // From this call on, every kernel exit jumps to ServerLoop instead of
  // resuming the trapping context — including this very call's return, so
  // nothing after it ever executes.
  mkc::UserSetUserContinuation(&ServerLoop);
  std::printf("server: unreachable ordinary return!\n");
}

void Client(void* /*arg*/) {
  auto* d = g_demo;
  mkc::UserMessage msg;
  std::uint64_t total = 0;
  for (int i = 0; i < d->requests; ++i) {
    std::uint64_t x = static_cast<std::uint64_t>(i);
    msg.header.dest = d->service_port;
    std::memcpy(msg.body, &x, sizeof(x));
    if (mkc::UserRpc(&msg, sizeof(x), d->reply_port) != mkc::KernReturn::kSuccess) {
      std::printf("client: rpc failed\n");
      return;
    }
    std::memcpy(&x, msg.body, sizeof(x));
    total += x;
  }
  std::printf("client: %d LRPC-style calls served, checksum %llu\n", d->requests,
              static_cast<unsigned long long>(total));
}

}  // namespace

int main(int argc, char** argv) {
  LrpcDemo demo;
  demo.requests = argc > 1 ? std::atoi(argv[1]) : 10000;
  g_demo = &demo;

  mkc::KernelConfig config;
  mkc::Kernel kernel(config);
  mkc::Task* server_task = kernel.CreateTask("lrpc-server");
  mkc::Task* client_task = kernel.CreateTask("client");
  demo.service_port = kernel.ipc().AllocatePort(server_task);
  demo.reply_port = kernel.ipc().AllocatePort(client_task);

  mkc::ThreadOptions daemon;
  daemon.daemon = true;
  kernel.CreateUserThread(server_task, &ServerBootstrap, nullptr, daemon);
  kernel.CreateUserThread(client_task, &Client, nullptr);
  kernel.Run();

  std::printf("server entered its user continuation %d time(s); no user register\n"
              "state was ever saved or restored for it across blocks\n",
              demo.served);
  return 0;
}
