// The paper's MS-DOS emulation scenario (§3.1): an emulated program whose
// privileged instructions trap to a user-level exception server living in
// the same address space. Exception handling is the paper's "best case" for
// continuations — 2-3x faster than the process-model kernels — because both
// directions of the exception RPC use handoff + recognition.
//
//   $ ./dos_emulator [frames]
//
// Runs the same emulated game on all three kernel models and compares.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/exc/exception.h"
#include "src/machine/cycle_model.h"
#include "src/ipc/ipc_space.h"
#include "src/ipc/mach_msg.h"
#include "src/kern/kernel.h"
#include "src/task/task.h"
#include "src/task/usermode.h"

namespace {

struct Emulator {
  mkc::PortId exc_port = mkc::kInvalidPort;
  int frames = 0;
  std::uint64_t instructions_emulated = 0;
};

// The exception server: catches the emulated program's privileged
// instructions (IN/OUT, interrupt flag manipulation...), "emulates" them,
// and restarts the program.
void DosServer(void* arg) {
  auto* emu = static_cast<Emulator*>(arg);
  mkc::UserMessage msg;
  if (mkc::UserServeOnce(&msg, 0, emu->exc_port) != mkc::KernReturn::kSuccess) {
    return;
  }
  for (;;) {
    mkc::ExcRequestBody req;
    std::memcpy(&req, msg.body, sizeof(req));
    ++emu->instructions_emulated;

    mkc::ExcReplyBody reply;
    reply.handled = 1;
    msg.header.dest = req.reply_port;
    msg.header.msg_id = mkc::kExcReplyMsgId;
    std::memcpy(msg.body, &reply, sizeof(reply));
    if (mkc::UserServeOnce(&msg, sizeof(reply), emu->exc_port) != mkc::KernReturn::kSuccess) {
      return;
    }
  }
}

// The emulated game: every frame executes a few privileged instructions
// (screen/port I/O) and some real computation.
void DosGame(void* arg) {
  auto* emu = static_cast<Emulator*>(arg);
  mkc::UserSetExceptionPort(emu->exc_port);
  for (int frame = 0; frame < emu->frames; ++frame) {
    mkc::UserRaiseException(mkc::kExcPrivilegedInstruction);  // outb to the VGA.
    mkc::UserRaiseException(mkc::kExcEmulation);              // int 21h.
    mkc::UserWork(500);                                       // Game logic.
  }
}

void RunOnce(mkc::ControlTransferModel model, int frames) {
  mkc::KernelConfig config;
  config.model = model;
  mkc::Kernel kernel(config);
  mkc::Task* dos = kernel.CreateTask("wing-commander");

  Emulator emu;
  emu.exc_port = kernel.ipc().AllocatePort(dos);
  emu.frames = frames;

  mkc::ThreadOptions daemon;
  daemon.daemon = true;
  kernel.CreateUserThread(dos, &DosServer, &emu, daemon);
  kernel.CreateUserThread(dos, &DosGame, &emu);

  auto start = std::chrono::steady_clock::now();
  mkc::Ticks t0 = kernel.clock().Now();
  kernel.Run();
  std::chrono::duration<double> wall = std::chrono::steady_clock::now() - start;

  const auto& exc = kernel.exc_stats();
  // Subtract the game's own computation so the per-exception cost stands out.
  double sim_us_per_exc = mkc::CyclesToMicros(kernel.clock().Now() - t0 -
                                              static_cast<mkc::Ticks>(500) * emu.frames) /
                          static_cast<double>(exc.raised);
  std::printf("%-9s: %8llu exceptions, %6.1f simulated us (%4.0f host ns) each | "
              "fast deliveries %llu, fast replies %llu\n",
              mkc::ModelName(model), static_cast<unsigned long long>(exc.raised),
              sim_us_per_exc, wall.count() * 1e9 / static_cast<double>(exc.raised),
              static_cast<unsigned long long>(exc.fast_deliveries),
              static_cast<unsigned long long>(exc.fast_replies));
}

}  // namespace

int main(int argc, char** argv) {
  int frames = argc > 1 ? std::atoi(argv[1]) : 50000;
  std::printf("Emulating %d frames of an MS-DOS game on each kernel model\n", frames);
  std::printf("(two privileged-instruction exceptions per frame)\n\n");
  RunOnce(mkc::ControlTransferModel::kMK40, frames);
  RunOnce(mkc::ControlTransferModel::kMK32, frames);
  RunOnce(mkc::ControlTransferModel::kMach25, frames);
  std::printf("\nPaper (Table 3): exception handling 135 us on MK40 vs 425/380 us on\n"
              "MK32/Mach 2.5 — the 2-3x gap should reproduce above.\n");
  return 0;
}
