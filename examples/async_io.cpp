// Asynchronous I/O via kernel completion continuations (§4).
//
// The thread schedules reads against a simulated device and keeps computing;
// each completion runs a kernel continuation that posts a notification
// message to the thread's port. The thread reaps completions when it wants
// them — classic overlap of I/O and computation.
//
//   $ ./async_io [requests]
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/ext/async_io.h"
#include "src/ext/ext_state.h"
#include "src/ipc/ipc_space.h"
#include "src/ipc/mach_msg.h"
#include "src/kern/kernel.h"
#include "src/task/task.h"
#include "src/task/usermode.h"

namespace {

struct IoState {
  mkc::PortId notify_port = mkc::kInvalidPort;
  int requests = 0;
  mkc::Ticks compute_per_io = 500;
  std::uint64_t completions_seen = 0;
  mkc::Ticks virtual_time_io_only = 0;
};

void OverlappedReader(void* arg) {
  auto* st = static_cast<IoState*>(arg);
  // Phase 1: overlapped — issue everything, compute, then reap.
  for (int i = 0; i < st->requests; ++i) {
    mkc::UserAsyncIoStart(st->notify_port, static_cast<std::uint32_t>(i), /*latency=*/2000);
    mkc::UserWork(st->compute_per_io);
  }
  mkc::UserMessage msg;
  for (int i = 0; i < st->requests; ++i) {
    if (mkc::UserMachMsg(&msg, mkc::kMsgRcvOpt, 0, mkc::kMaxInlineBytes, st->notify_port) !=
        mkc::KernReturn::kSuccess) {
      return;
    }
    mkc::AsyncIoDoneBody done;
    std::memcpy(&done, msg.body, sizeof(done));
    ++st->completions_seen;
  }
}

void SequentialReader(void* arg) {
  // Phase 2 baseline: same work, but waiting for each I/O before computing.
  auto* st = static_cast<IoState*>(arg);
  mkc::UserMessage msg;
  for (int i = 0; i < st->requests; ++i) {
    mkc::UserAsyncIoStart(st->notify_port, static_cast<std::uint32_t>(i), 2000);
    if (mkc::UserMachMsg(&msg, mkc::kMsgRcvOpt, 0, mkc::kMaxInlineBytes, st->notify_port) !=
        mkc::KernReturn::kSuccess) {
      return;
    }
    mkc::UserWork(st->compute_per_io);
  }
}

mkc::Ticks RunOne(mkc::UserEntry entry, IoState* st, const char* label) {
  mkc::KernelConfig config;
  mkc::Kernel kernel(config);
  mkc::Task* task = kernel.CreateTask("reader");
  st->notify_port = kernel.ipc().AllocatePort(task);
  kernel.CreateUserThread(task, entry, st);
  kernel.Run();
  const auto& aio = mkc::GetAsyncIoStats(kernel);
  std::printf("%-12s: %llu started, %llu completed (%llu direct, %llu queued), "
              "%llu virtual ticks\n",
              label, static_cast<unsigned long long>(aio.started),
              static_cast<unsigned long long>(aio.completed),
              static_cast<unsigned long long>(aio.notify_direct),
              static_cast<unsigned long long>(aio.notify_queued),
              static_cast<unsigned long long>(kernel.clock().Now()));
  return kernel.clock().Now();
}

}  // namespace

int main(int argc, char** argv) {
  int requests = argc > 1 ? std::atoi(argv[1]) : 64;

  IoState overlapped;
  overlapped.requests = requests;
  IoState sequential;
  sequential.requests = requests;

  std::printf("%d reads of a 2000-tick device, 500 ticks of computation each\n\n", requests);
  mkc::Ticks t_overlap = RunOne(&OverlappedReader, &overlapped, "overlapped");
  mkc::Ticks t_seq = RunOne(&SequentialReader, &sequential, "sequential");
  std::printf("\noverlap speedup in virtual time: %.2fx\n",
              static_cast<double>(t_seq) / static_cast<double>(t_overlap));
  return 0;
}
