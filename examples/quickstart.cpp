// Quickstart: boot a simulated machine, run a cross-address-space RPC
// between two tasks, and watch the continuation machinery work.
//
//   $ ./quickstart
//
// This is Figure 2 of the paper in motion: the client's send finds the
// server waiting with mach_msg_continue, hands it the running kernel stack,
// and the server's resumption is recognized and completed in the client's
// still-live frame — no message queueing, no scheduler, no context switch.
#include <cstdio>
#include <cstring>
#include <string_view>

#include "src/ipc/ipc_space.h"
#include "src/ipc/mach_msg.h"
#include "src/kern/kernel.h"
#include "src/task/task.h"
#include "src/task/usermode.h"

namespace {

struct Shared {
  mkc::PortId service_port = mkc::kInvalidPort;
  mkc::PortId reply_port = mkc::kInvalidPort;
  int requests = 0;
};

// The server: an infinite receive loop. Between requests it is the paper's
// archetypal blocked thread — no kernel stack, just a continuation.
void Server(void* arg) {
  auto* sh = static_cast<Shared*>(arg);
  mkc::UserMessage msg;
  if (mkc::UserServeOnce(&msg, 0, sh->service_port) != mkc::KernReturn::kSuccess) {
    return;
  }
  for (;;) {
    std::uint64_t x;
    std::memcpy(&x, msg.body, sizeof(x));
    x *= 2;  // The service: doubling numbers.
    msg.header.dest = msg.header.reply;
    std::memcpy(msg.body, &x, sizeof(x));
    if (mkc::UserServeOnce(&msg, sizeof(x), sh->service_port) != mkc::KernReturn::kSuccess) {
      return;
    }
  }
}

void Client(void* arg) {
  auto* sh = static_cast<Shared*>(arg);
  mkc::UserMessage msg;
  std::uint64_t total = 0;
  for (int i = 1; i <= sh->requests; ++i) {
    std::uint64_t x = static_cast<std::uint64_t>(i);
    msg.header.dest = sh->service_port;
    std::memcpy(msg.body, &x, sizeof(x));
    mkc::UserRpc(&msg, sizeof(x), sh->reply_port);
    std::memcpy(&x, msg.body, sizeof(x));
    total += x;
  }
  std::printf("client: %d RPCs complete, sum of doubled values = %llu\n", sh->requests,
              static_cast<unsigned long long>(total));
}

}  // namespace

int main(int argc, char** argv) {
  bool want_trace = argc > 1 && std::string_view(argv[1]) == "--trace";

  mkc::KernelConfig config;  // MK40: the paper's continuation kernel.
  if (want_trace) {
    config.trace_capacity = 64;  // Keep just the tail: the last few RPCs.
  }
  mkc::Kernel kernel(config);

  mkc::Task* client_task = kernel.CreateTask("client");
  mkc::Task* server_task = kernel.CreateTask("doubler");

  Shared sh;
  sh.service_port = kernel.ipc().AllocatePort(server_task);
  sh.reply_port = kernel.ipc().AllocatePort(client_task);
  sh.requests = 10000;

  mkc::ThreadOptions daemon;
  daemon.daemon = true;
  kernel.CreateUserThread(server_task, &Server, &sh, daemon);
  kernel.CreateUserThread(client_task, &Client, &sh);

  kernel.Run();

  const auto& ts = kernel.transfer_stats();
  const auto& ipc = kernel.ipc().stats();
  const auto& stacks = kernel.stack_pool().stats();
  std::printf("\nkernel model: %s\n", mkc::ModelName(kernel.model()));
  std::printf("blocking operations ........ %llu\n",
              static_cast<unsigned long long>(ts.total_blocks));
  std::printf("  with stack discard ....... %llu (%.1f%%)\n",
              static_cast<unsigned long long>(ts.TotalDiscards()),
              100.0 * static_cast<double>(ts.TotalDiscards()) /
                  static_cast<double>(ts.total_blocks));
  std::printf("stack handoffs ............. %llu\n",
              static_cast<unsigned long long>(ts.stack_handoffs));
  std::printf("continuation recognitions .. %llu\n",
              static_cast<unsigned long long>(ts.recognitions));
  std::printf("fast RPC path taken ........ %llu of %llu sends\n",
              static_cast<unsigned long long>(ipc.fast_rpc_handoffs),
              static_cast<unsigned long long>(ipc.messages_sent));
  std::printf("messages ever queued ....... %llu\n",
              static_cast<unsigned long long>(ipc.queued_sends));
  std::printf("kernel stacks: avg %.3f in use, max %llu (threads: %zu)\n",
              stacks.AverageInUse(), static_cast<unsigned long long>(stacks.max_in_use),
              kernel.threads().size());

  if (want_trace) {
    // The tail of the control-transfer trace: each RPC leg reads
    //   trap-enter -> block(+cont) -> stack-handoff -> recognition ->
    //   syscall-return
    // — Figure 2 of the paper, as live events.
    std::printf("\nlast control-transfer events (vtime, thread, event):\n");
    kernel.trace().Dump(stdout);
  }
  return 0;
}
