// User-level virtual memory primitives via fast exceptions — the Appel & Li
// use case the paper cites in §1.2 and §2.5: "Fast exception handling ...
// becomes necessary when using virtual memory primitives from user level".
//
// A mutator writes randomly into a write-protected heap. Every first write
// to a page faults; a same-task exception server records the page as dirty
// and unprotects it; the hardware (here: UserTouch) retries the write. At
// each "checkpoint" the dirty set is harvested and the heap re-protected —
// the classic incremental-checkpoint / GC write-barrier structure.
//
// Under MK40 each of those faults is a continuation-recognition exception
// RPC, which is exactly why the paper cares about exception latency.
//
//   $ ./write_barrier [pages] [writes-per-epoch] [epochs]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "src/base/rng.h"
#include "src/exc/exception.h"
#include "src/ipc/ipc_space.h"
#include "src/ipc/mach_msg.h"
#include "src/kern/kernel.h"
#include "src/machine/cycle_model.h"
#include "src/task/task.h"
#include "src/task/usermode.h"

namespace {

struct Barrier {
  mkc::PortId exc_port = mkc::kInvalidPort;
  int pages = 0;
  int writes_per_epoch = 0;
  int epochs = 0;
  std::vector<mkc::VmAddress> page_regions;  // One single-page region per heap page.
  std::vector<bool> dirty;
  int dirty_count = 0;
  std::uint64_t faults_handled = 0;
  std::uint64_t total_dirty = 0;
};

Barrier* g_barrier = nullptr;

int PageIndexOf(mkc::VmAddress addr) {
  Barrier* b = g_barrier;
  for (int i = 0; i < b->pages; ++i) {
    if (addr >= b->page_regions[i] && addr < b->page_regions[i] + mkc::kPageSize) {
      return i;
    }
  }
  return -1;
}

// The write-barrier server: unprotect the faulting page, mark it dirty.
void BarrierServer(void* /*arg*/) {
  Barrier* b = g_barrier;
  mkc::UserMessage msg;
  if (mkc::UserServeOnce(&msg, 0, b->exc_port) != mkc::KernReturn::kSuccess) {
    return;
  }
  for (;;) {
    mkc::ExcRequestBody req;
    std::memcpy(&req, msg.body, sizeof(req));
    mkc::ExcReplyBody reply;
    reply.handled = 0;
    if (mkc::IsBadAccessCode(req.code)) {
      int page = PageIndexOf(mkc::BadAccessAddress(req.code));
      if (page >= 0) {
        if (!b->dirty[page]) {
          b->dirty[page] = true;
          ++b->dirty_count;
        }
        mkc::UserVmProtect(b->page_regions[page], /*writable=*/true);
        ++b->faults_handled;
        reply.handled = 1;
      }
    }
    msg.header.dest = req.reply_port;
    msg.header.msg_id = mkc::kExcReplyMsgId;
    std::memcpy(msg.body, &reply, sizeof(reply));
    if (mkc::UserServeOnce(&msg, sizeof(reply), b->exc_port) != mkc::KernReturn::kSuccess) {
      return;
    }
  }
}

void Mutator(void* /*arg*/) {
  Barrier* b = g_barrier;
  mkc::UserSetExceptionPort(b->exc_port);

  // Build the heap: one single-page region per page so protection is
  // per-page, then fault everything in writable once.
  b->page_regions.resize(b->pages);
  b->dirty.assign(b->pages, false);
  for (int i = 0; i < b->pages; ++i) {
    b->page_regions[i] = mkc::UserVmAllocate(mkc::kPageSize, /*paged=*/false);
    mkc::UserTouch(b->page_regions[i], /*write=*/true);
  }

  mkc::Rng rng(7);
  for (int epoch = 0; epoch < b->epochs; ++epoch) {
    // Checkpoint: harvest the dirty set and re-arm the barrier.
    b->total_dirty += static_cast<std::uint64_t>(b->dirty_count);
    b->dirty.assign(b->pages, false);
    b->dirty_count = 0;
    for (int i = 0; i < b->pages; ++i) {
      mkc::UserVmProtect(b->page_regions[i], /*writable=*/false);
    }
    // Mutate: random writes; first write per page trips the barrier.
    for (int w = 0; w < b->writes_per_epoch; ++w) {
      int page = static_cast<int>(rng.Below(static_cast<std::uint64_t>(b->pages)));
      mkc::UserTouch(b->page_regions[page] + rng.Below(mkc::kPageSize), /*write=*/true);
      mkc::UserWork(20);
    }
  }
  b->total_dirty += static_cast<std::uint64_t>(b->dirty_count);
}

}  // namespace

int main(int argc, char** argv) {
  Barrier b;
  b.pages = argc > 1 ? std::atoi(argv[1]) : 64;
  b.writes_per_epoch = argc > 2 ? std::atoi(argv[2]) : 300;
  b.epochs = argc > 3 ? std::atoi(argv[3]) : 10;
  g_barrier = &b;

  mkc::KernelConfig config;  // MK40.
  mkc::Kernel kernel(config);
  mkc::Task* task = kernel.CreateTask("mutator");
  b.exc_port = kernel.ipc().AllocatePort(task);

  mkc::ThreadOptions daemon;
  daemon.daemon = true;
  kernel.CreateUserThread(task, &BarrierServer, nullptr, daemon);
  kernel.CreateUserThread(task, &Mutator, nullptr);
  kernel.Run();

  const auto& exc = kernel.exc_stats();
  std::printf("heap: %d pages; %d epochs x %d random writes\n", b.pages, b.epochs,
              b.writes_per_epoch);
  std::printf("write-barrier faults handled: %llu (dirty pages found: %llu)\n",
              static_cast<unsigned long long>(b.faults_handled),
              static_cast<unsigned long long>(b.total_dirty));
  std::printf("exception RPCs: %llu raised, %llu fast deliveries, %llu fast replies\n",
              static_cast<unsigned long long>(exc.raised),
              static_cast<unsigned long long>(exc.fast_deliveries),
              static_cast<unsigned long long>(exc.fast_replies));
  std::printf("simulated barrier cost: %.1f us per fault (the number Appel & Li care about)\n",
              mkc::CyclesToMicros(kernel.machine_cycles()) /
                  static_cast<double>(b.faults_handled));
  return 0;
}
