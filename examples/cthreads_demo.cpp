// C-Threads with continuations (§6 future work): a user-level thread package
// where blocked threads can discard their stacks, exactly like kernel
// threads under MK40.
//
// A pool of worker cthreads serves a queue of jobs. Between jobs each worker
// parks with a continuation, so a thousand parked workers hold zero stacks.
//
//   $ ./cthreads_demo [workers] [jobs]
#include <cstdio>
#include <cstdlib>

#include "src/ext/cthreads.h"

namespace {

struct JobPool {
  mkc::CthreadRuntime* rt = nullptr;
  char job_event = 0;
  int jobs_remaining = 0;
  int jobs_done = 0;
  std::uint64_t work_sum = 0;
};

JobPool* g_pool = nullptr;

struct __attribute__((packed)) WorkerScratch {
  std::uint32_t jobs_handled;
};

// The worker's continuation: the whole "loop" is re-entry of this function
// on a fresh stack each time a job arrives.
void WorkerContinue() {
  JobPool* pool = g_pool;
  mkc::Cthread* self = pool->rt->Current();
  auto& ws = self->Scratch<WorkerScratch>();
  while (pool->jobs_remaining > 0) {
    // Claim and run one job.
    --pool->jobs_remaining;
    ++pool->jobs_done;
    ++ws.jobs_handled;
    pool->work_sum += ws.jobs_handled;
    pool->rt->Yield();  // Let other workers interleave.
  }
  pool->rt->Exit();
}

void WorkerStart(void* /*arg*/) {
  JobPool* pool = g_pool;
  mkc::Cthread* self = pool->rt->Current();
  self->Scratch<WorkerScratch>().jobs_handled = 0;
  // Park until jobs exist: stackless from the start.
  pool->rt->WaitWithContinuation(&pool->job_event, &WorkerContinue);
}

}  // namespace

int main(int argc, char** argv) {
  int workers = argc > 1 ? std::atoi(argv[1]) : 1000;
  int jobs = argc > 2 ? std::atoi(argv[2]) : 20000;

  mkc::CthreadRuntime rt;
  JobPool pool;
  pool.rt = &rt;
  pool.jobs_remaining = jobs;
  g_pool = &pool;

  for (int i = 0; i < workers; ++i) {
    rt.Spawn(&WorkerStart, nullptr);
  }

  rt.Run();  // All workers park with continuations.
  std::printf("after parking: %d live cthreads, %llu stacks in use\n", workers,
              static_cast<unsigned long long>(rt.stats().stacks_in_use));

  rt.Notify(&pool.job_event);  // Jobs are available: wake the pool.
  rt.Run();

  const auto& st = rt.stats();
  std::printf("jobs done: %d / %d\n", pool.jobs_done, jobs);
  std::printf("blocks %llu, stack discards %llu\n",
              static_cast<unsigned long long>(st.blocks),
              static_cast<unsigned long long>(st.discards));
  std::printf("max stacks ever in use: %llu for %d workers "
              "(fresh host allocations: %llu)\n",
              static_cast<unsigned long long>(st.max_stacks_in_use), workers,
              static_cast<unsigned long long>(st.stacks_created));
  return 0;
}
