// Kernel-to-user upcalls via continuation replacement (§4).
//
// "The upcalls required by the x-kernel and Scheduler Activations can be
// implemented by keeping a pool of blocked threads in the kernel, each with
// a default 'return-to-user-level' continuation. To perform an upcall, the
// default continuation is replaced with one that transfers control out of
// the kernel to a specific address at user level."
//
//   $ ./upcalls [events]
#include <cstdio>
#include <cstdlib>

#include "src/ext/ext_state.h"
#include "src/kern/kernel.h"
#include "src/task/task.h"
#include "src/task/usermode.h"

namespace {

struct UpcallDemo {
  int events = 0;
  int delivered = 0;
  std::uint64_t payload_sum = 0;
};

UpcallDemo* g_demo = nullptr;

// Runs at user level when the kernel dispatches an upcall: note that control
// arrived here directly from the kernel — NOT as a return from the park
// syscall.
void UpcallHandler(std::uint64_t payload) {
  ++g_demo->delivered;
  g_demo->payload_sum += payload;
  // Handled; donate this thread back to the pool.
  mkc::UserUpcallPark(&UpcallHandler);
  // Only reached if the thread is resumed without an upcall.
  mkc::UserThreadExit();
}

void PoolThread(void* /*arg*/) {
  mkc::UserUpcallPark(&UpcallHandler);
}

void EventSource(void* /*arg*/) {
  for (int i = 1; i <= g_demo->events; ++i) {
    // Some event the kernel wants to notify user level about.
    mkc::UserWork(100);
    if (!mkc::UserUpcallTrigger(static_cast<std::uint64_t>(i))) {
      std::printf("event %d: no parked thread available\n", i);
    }
    // Let the upcall run before the next event.
    mkc::UserYield();
  }
}

}  // namespace

int main(int argc, char** argv) {
  UpcallDemo demo;
  demo.events = argc > 1 ? std::atoi(argv[1]) : 1000;
  g_demo = &demo;

  mkc::KernelConfig config;
  mkc::Kernel kernel(config);
  mkc::Task* task = kernel.CreateTask("activations");

  mkc::ThreadOptions daemon;
  daemon.daemon = true;
  kernel.CreateUserThread(task, &PoolThread, nullptr, daemon);
  kernel.CreateUserThread(task, &PoolThread, nullptr, daemon);
  kernel.CreateUserThread(task, &EventSource, nullptr);

  kernel.Run();

  std::printf("events fired: %d, upcalls delivered: %d, payload sum: %llu (expect %llu)\n",
              demo.events, demo.delivered,
              static_cast<unsigned long long>(demo.payload_sum),
              static_cast<unsigned long long>(demo.events) * (demo.events + 1) / 2);
  std::printf("pool still holds %zu parked thread(s)\n",
              kernel.ext().upcalls.ParkedCount());
  return 0;
}
