// Page-fault handling demo (§2.5, "User-Level Page Faults").
//
// A thread walks a file-backed region on a machine with too little physical
// memory, so faults hit the simulated disk and the default pager evicts
// behind it. Under MK40 every user fault blocks with a continuation —
// faulting threads hold no kernel stacks while they wait for the disk.
//
//   $ ./page_fault_demo [pages] [physical-pages]
#include <cstdio>
#include <cstdlib>

#include "src/kern/kernel.h"
#include "src/task/task.h"
#include "src/task/usermode.h"
#include "src/vm/vm_system.h"

namespace {

struct DemoState {
  mkc::VmSize region_pages = 0;
  int sweeps = 0;
};

void Walker(void* arg) {
  auto* st = static_cast<DemoState*>(arg);
  mkc::VmAddress base =
      mkc::UserVmAllocate(st->region_pages * mkc::kPageSize, /*paged=*/true);
  for (int sweep = 0; sweep < st->sweeps; ++sweep) {
    for (mkc::VmSize p = 0; p < st->region_pages; ++p) {
      mkc::UserTouch(base + p * mkc::kPageSize, /*write=*/(sweep % 2 == 0));
      mkc::UserWork(10);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  DemoState st;
  st.region_pages = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 512;
  st.sweeps = 3;

  mkc::KernelConfig config;
  config.physical_pages = argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 128;

  mkc::Kernel kernel(config);
  mkc::Task* task = kernel.CreateTask("walker");
  kernel.CreateUserThread(task, &Walker, &st);
  kernel.Run();

  const auto& vm = kernel.vm().stats();
  const auto& pool = kernel.vm().pool().stats();
  const auto& faults = kernel.transfer_stats()
                           .by_reason[static_cast<int>(mkc::BlockReason::kPageFault)];
  std::printf("region: %llu pages, physical memory: %u pages, %d sweeps\n",
              static_cast<unsigned long long>(st.region_pages), config.physical_pages,
              st.sweeps);
  std::printf("user faults ........ %llu (%llu resolved without blocking)\n",
              static_cast<unsigned long long>(vm.user_faults),
              static_cast<unsigned long long>(vm.fast_faults));
  std::printf("pageins ............ %llu\n", static_cast<unsigned long long>(vm.pageins));
  std::printf("pageouts ........... %llu (min free pages seen: %llu)\n",
              static_cast<unsigned long long>(vm.pageouts),
              static_cast<unsigned long long>(pool.min_free));
  std::printf("fault blocks ....... %llu, of which %llu discarded the kernel stack\n",
              static_cast<unsigned long long>(faults.blocks),
              static_cast<unsigned long long>(faults.discards));
  std::printf("virtual time ....... %llu ticks (disk latency %llu ticks/IO)\n",
              static_cast<unsigned long long>(kernel.clock().Now()),
              static_cast<unsigned long long>(config.disk_latency));
  std::printf("kernel stacks ...... avg %.3f in use (faulting threads hold none)\n",
              kernel.stack_pool().stats().AverageInUse());
  return 0;
}
